//! Regression test pinning the zero-allocation steady-state property of
//! the fabric hot loop.
//!
//! A counting `#[global_allocator]` wraps the system allocator; after a
//! warm-up phase (arena free list populated, rings grown to their working
//! depth, scratch buffers at their high-water mark) a measured window of
//! inject → tick → deliver rounds must perform **zero** heap allocations.
//! Integration tests are separate binaries, so the wrapper allocator is
//! confined to this file and cannot slow the rest of the suite.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use wsp_noc::{Fabric, FabricPacket, NetworkChoice, NetworkKind};
use wsp_topo::{TileArray, TileCoord};

/// System allocator wrapper that counts every allocation-path call.
/// Frees are deliberately not counted: handing memory back is harmless;
/// acquiring it in the hot loop is the regression this test pins.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// One wave of neighbour-east requests: every tile with an eastern
/// neighbour sends one packet to it. Exercises injection, link FIFOs,
/// arbitration, and delivery every round.
fn inject_wave(fabric: &mut Fabric, cols: u16, rows: u16) -> u64 {
    let mut injected = 0;
    for y in 0..rows {
        for x in 0..cols - 1 {
            let src = TileCoord::new(x, y);
            let dst = TileCoord::new(x + 1, y);
            let id = fabric.allocate_id();
            let packet = FabricPacket::request(
                id,
                src,
                dst,
                NetworkChoice::Direct(NetworkKind::Xy),
                fabric.cycle(),
            );
            if fabric.inject(packet) {
                injected += 1;
            }
        }
    }
    injected
}

/// Ticks until the fabric is empty, reusing `delivered`; returns the
/// number of packets that surfaced.
fn drain_into(fabric: &mut Fabric, delivered: &mut Vec<FabricPacket>) -> u64 {
    let mut total = 0;
    while fabric.in_flight() > 0 {
        fabric.tick_into(delivered);
        total += delivered.len() as u64;
    }
    total
}

#[test]
fn steady_state_ticks_do_not_allocate() {
    const COLS: u16 = 16;
    const ROWS: u16 = 16;
    let array = TileArray::new(COLS, ROWS);
    let mut fabric = Fabric::new(array, 4);
    let mut delivered = Vec::new();

    // Warm-up: grow every reusable buffer to its steady-state footprint —
    // the arena columns and free list, ring capacities, scratch vectors,
    // and the caller-side delivery buffer.
    let mut warmed = 0;
    for _ in 0..60 {
        warmed += inject_wave(&mut fabric, COLS, ROWS);
        fabric.tick_into(&mut delivered);
        warmed -= delivered.len() as u64;
    }
    warmed -= drain_into(&mut fabric, &mut delivered);
    assert_eq!(warmed, 0, "warm-up traffic fully drained");
    assert_eq!(fabric.arena_live(), 0);
    let footprint = fabric.arena_slots();
    assert!(footprint > 0, "warm-up populated the arena");

    // Measured window: the same traffic shape must fit entirely inside
    // the warmed buffers.
    let before = ALLOCS.load(Ordering::Relaxed);
    let mut moved = 0;
    for _ in 0..40 {
        moved += inject_wave(&mut fabric, COLS, ROWS);
        fabric.tick_into(&mut delivered);
    }
    let drained = drain_into(&mut fabric, &mut delivered);
    let after = ALLOCS.load(Ordering::Relaxed);

    assert!(moved > 0, "measured window injected traffic");
    assert!(drained > 0, "measured window delivered traffic");
    assert_eq!(
        after - before,
        0,
        "steady-state fabric ticks must not touch the heap"
    );
    assert_eq!(
        fabric.arena_slots(),
        footprint,
        "steady-state traffic reuses warm arena slots instead of growing"
    );
}
