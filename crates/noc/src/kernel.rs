//! Kernel-software routing policy (Sec. VI).
//!
//! The hardware gives every tile two deterministic networks; *software*
//! decides which one each source-destination pair uses. After assembly the
//! fault map is known, and the kernel:
//!
//! 1. picks the only healthy network when just one direct path survives;
//! 2. balances pairs across both networks when both paths are healthy
//!    (deterministically, so every packet of a pair rides the same network
//!    and packet order is preserved);
//! 3. relays through an intermediate tile when both direct paths are
//!    broken — the intermediate tile's cores spend cycles forwarding, so
//!    this is a last resort the dual-network design makes rare.

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};
use wsp_topo::{FaultMap, TileCoord};

use crate::connectivity::SegmentOracle;
use crate::routing::NetworkKind;

/// The kernel's routing decision for one source-destination pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NetworkChoice {
    /// Send directly on the given network (response returns on its
    /// complement along the same tiles).
    Direct(NetworkKind),
    /// Relay via an intermediate tile: `first` carries source→via,
    /// `second` carries via→destination. The response retraces the same
    /// two legs on the complementary networks.
    Relay {
        /// The forwarding tile.
        via: TileCoord,
        /// Network for the source→via leg.
        first: NetworkKind,
        /// Network for the via→destination leg.
        second: NetworkKind,
    },
    /// No healthy one- or two-leg path exists.
    Disconnected,
}

impl NetworkChoice {
    /// The tile a packet on leg `leg` of this choice heads for, given its
    /// final destination `dst`: relay routes aim at the `via` tile on leg
    /// 0, every other case aims at `dst`. Requests and responses agree —
    /// a response retraces the same two legs in reverse order, so its
    /// leg-0 target is the same intermediate tile.
    ///
    /// This lives on the choice (not the packet) so the fabric's
    /// struct-of-arrays packet arena can answer route queries from its
    /// parallel columns without materialising a packet.
    #[inline]
    pub fn leg_target(self, leg: u8, dst: TileCoord) -> TileCoord {
        match (self, leg) {
            (NetworkChoice::Relay { via, .. }, 0) => via,
            _ => dst,
        }
    }

    /// The network carrying leg `leg`. A `response` retraces the
    /// request's physical path in reverse on the complementary networks.
    ///
    /// # Panics
    ///
    /// Panics on [`NetworkChoice::Disconnected`]: unreachable pairs are
    /// rejected before any routing question is asked.
    #[inline]
    pub fn leg_network(self, response: bool, leg: u8) -> NetworkKind {
        match (self, response, leg) {
            (NetworkChoice::Direct(n), false, _) => n,
            (NetworkChoice::Direct(n), true, _) => n.complement(),
            (NetworkChoice::Relay { first, .. }, false, 0) => first,
            (NetworkChoice::Relay { second, .. }, false, _) => second,
            // Response retraces: leg 0 is dst→via on second's complement,
            // leg 1 is via→src on first's complement.
            (NetworkChoice::Relay { second, .. }, true, 0) => second.complement(),
            (NetworkChoice::Relay { first, .. }, true, _) => first.complement(),
            (NetworkChoice::Disconnected, _, _) => {
                unreachable!("disconnected packets are never routed")
            }
        }
    }
}

impl fmt::Display for NetworkChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkChoice::Direct(n) => write!(f, "direct on {n}"),
            NetworkChoice::Relay { via, .. } => write!(f, "relay via {via}"),
            NetworkChoice::Disconnected => f.write_str("disconnected"),
        }
    }
}

/// Plans per-pair network assignments over a known fault map.
///
/// # Examples
///
/// ```
/// use wsp_noc::{NetworkChoice, RoutePlanner};
/// use wsp_topo::{FaultMap, TileArray, TileCoord};
///
/// let planner = RoutePlanner::new(FaultMap::none(TileArray::new(8, 8)));
/// let choice = planner.choose(TileCoord::new(0, 0), TileCoord::new(5, 5));
/// assert!(matches!(choice, NetworkChoice::Direct(_)));
/// ```
#[derive(Debug, Clone)]
pub struct RoutePlanner {
    faults: FaultMap,
    oracle: SegmentOracle,
}

impl RoutePlanner {
    /// Creates a planner for the given post-assembly fault map.
    pub fn new(faults: FaultMap) -> Self {
        let oracle = SegmentOracle::new(&faults);
        RoutePlanner { faults, oracle }
    }

    /// The fault map the planner consults.
    pub fn faults(&self) -> &FaultMap {
        &self.faults
    }

    /// The kernel's decision for the pair `(src, dst)`.
    ///
    /// Both endpoints must be healthy for any communication; a faulty
    /// endpoint yields [`NetworkChoice::Disconnected`].
    ///
    /// # Panics
    ///
    /// Panics if either tile lies outside the array.
    pub fn choose(&self, src: TileCoord, dst: TileCoord) -> NetworkChoice {
        if src == dst || self.faults.is_faulty(src) || self.faults.is_faulty(dst) {
            return NetworkChoice::Disconnected;
        }
        let xy = self.oracle.xy_connected(src, dst);
        let yx = self.oracle.yx_connected(src, dst);
        match (xy, yx) {
            (true, true) => NetworkChoice::Direct(self.balance(src, dst)),
            (true, false) => NetworkChoice::Direct(NetworkKind::Xy),
            (false, true) => NetworkChoice::Direct(NetworkKind::Yx),
            (false, false) => self.find_relay(src, dst),
        }
    }

    /// Deterministic load balancing: pairs hash onto the two networks so
    /// aggregate utilisation is even while any one pair always uses the
    /// same network (preserving packet order).
    fn balance(&self, src: TileCoord, dst: TileCoord) -> NetworkKind {
        let h = (u64::from(src.x) ^ u64::from(dst.y).rotate_left(16))
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ (u64::from(src.y) ^ u64::from(dst.x).rotate_left(32))
                .wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
        if h & 1 == 0 {
            NetworkKind::Xy
        } else {
            NetworkKind::Yx
        }
    }

    /// Searches for a relay tile with healthy legs to both endpoints,
    /// preferring the one adding the fewest extra hops.
    fn find_relay(&self, src: TileCoord, dst: TileCoord) -> NetworkChoice {
        let mut best: Option<(u32, NetworkChoice)> = None;
        for via in self.faults.healthy_tiles() {
            if via == src || via == dst {
                continue;
            }
            let first = if self.oracle.xy_connected(src, via) {
                Some(NetworkKind::Xy)
            } else if self.oracle.yx_connected(src, via) {
                Some(NetworkKind::Yx)
            } else {
                None
            };
            let second = if self.oracle.xy_connected(via, dst) {
                Some(NetworkKind::Xy)
            } else if self.oracle.yx_connected(via, dst) {
                Some(NetworkKind::Yx)
            } else {
                None
            };
            if let (Some(first), Some(second)) = (first, second) {
                let hops = src.manhattan_distance(via) + via.manhattan_distance(dst);
                let candidate = (hops, NetworkChoice::Relay { via, first, second });
                match &best {
                    Some((best_hops, _)) if *best_hops <= hops => {}
                    _ => best = Some(candidate),
                }
            }
        }
        best.map(|(_, c)| c).unwrap_or(NetworkChoice::Disconnected)
    }

    /// Builds the full routing table for every ordered healthy pair.
    pub fn build_table(&self) -> RoutingTable {
        let mut entries = HashMap::new();
        let healthy: Vec<TileCoord> = self.faults.healthy_tiles().collect();
        for &s in &healthy {
            for &d in &healthy {
                if s != d {
                    entries.insert((s, d), self.choose(s, d));
                }
            }
        }
        RoutingTable { entries }
    }
}

/// The kernel's materialised per-pair routing table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutingTable {
    entries: HashMap<(TileCoord, TileCoord), NetworkChoice>,
}

impl RoutingTable {
    /// The decision for a pair, if the pair is in the table.
    pub fn get(&self, src: TileCoord, dst: TileCoord) -> Option<NetworkChoice> {
        self.entries.get(&(src, dst)).copied()
    }

    /// Number of pairs in the table.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Counts of `(direct XY, direct YX, relayed, disconnected)` pairs —
    /// the balance statistic the kernel aims to keep even.
    pub fn utilization(&self) -> (usize, usize, usize, usize) {
        let mut xy = 0;
        let mut yx = 0;
        let mut relay = 0;
        let mut dead = 0;
        for choice in self.entries.values() {
            match choice {
                NetworkChoice::Direct(NetworkKind::Xy) => xy += 1,
                NetworkChoice::Direct(NetworkKind::Yx) => yx += 1,
                NetworkChoice::Relay { .. } => relay += 1,
                NetworkChoice::Disconnected => dead += 1,
            }
        }
        (xy, yx, relay, dead)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsp_common::seeded_rng;
    use wsp_topo::TileArray;

    #[test]
    fn clean_wafer_all_direct_and_balanced() {
        let planner = RoutePlanner::new(FaultMap::none(TileArray::new(16, 16)));
        let table = planner.build_table();
        let (xy, yx, relay, dead) = table.utilization();
        assert_eq!(relay, 0);
        assert_eq!(dead, 0);
        let total = (xy + yx) as f64;
        let balance = xy as f64 / total;
        // Hash balancing should be near 50/50 (Sec. VI: "both the networks
        // are equally utilized").
        assert!(
            (0.45..0.55).contains(&balance),
            "XY share {balance:.3} not balanced"
        );
    }

    #[test]
    fn single_surviving_path_is_used() {
        let array = TileArray::new(8, 8);
        // Fault at (4,0) kills the XY path (row 0 first) from (0,0)→(7,7).
        let planner = RoutePlanner::new(FaultMap::from_faulty(array, [TileCoord::new(4, 0)]));
        let choice = planner.choose(TileCoord::new(0, 0), TileCoord::new(7, 7));
        assert_eq!(choice, NetworkChoice::Direct(NetworkKind::Yx));
        // The reverse direction's XY path also avoids row 0 → both healthy.
        let reverse = planner.choose(TileCoord::new(7, 7), TileCoord::new(0, 0));
        assert!(matches!(reverse, NetworkChoice::Direct(_)));
    }

    #[test]
    fn pair_choice_is_stable() {
        // Packet consistency demands one network per pair: repeated calls
        // must return the same choice.
        let planner = RoutePlanner::new(FaultMap::none(TileArray::new(8, 8)));
        let s = TileCoord::new(1, 2);
        let d = TileCoord::new(6, 5);
        let first = planner.choose(s, d);
        for _ in 0..10 {
            assert_eq!(planner.choose(s, d), first);
        }
    }

    #[test]
    fn colinear_pair_with_blocked_row_gets_relayed() {
        let array = TileArray::new(8, 8);
        // (0,3)→(7,3) same row; block the row in between: both DoR paths
        // (identical for colinear pairs) die, but a relay through another
        // row reconnects them.
        let planner = RoutePlanner::new(FaultMap::from_faulty(array, [TileCoord::new(4, 3)]));
        let choice = planner.choose(TileCoord::new(0, 3), TileCoord::new(7, 3));
        match choice {
            NetworkChoice::Relay { via, .. } => assert!(via.y != 3 || via.x > 4 || via.x < 4),
            other => panic!("expected relay, got {other:?}"),
        }
    }

    #[test]
    fn relay_prefers_minimal_detour() {
        let array = TileArray::new(8, 8);
        let planner = RoutePlanner::new(FaultMap::from_faulty(array, [TileCoord::new(4, 3)]));
        let s = TileCoord::new(0, 3);
        let d = TileCoord::new(7, 3);
        if let NetworkChoice::Relay { via, .. } = planner.choose(s, d) {
            // Minimal detour for a blocked row is one row over: 2 extra hops.
            let hops = s.manhattan_distance(via) + via.manhattan_distance(d);
            assert_eq!(hops, s.manhattan_distance(d) + 2);
        } else {
            panic!("expected relay");
        }
    }

    #[test]
    fn faulty_endpoints_are_disconnected() {
        let array = TileArray::new(8, 8);
        let dead = TileCoord::new(2, 2);
        let planner = RoutePlanner::new(FaultMap::from_faulty(array, [dead]));
        assert_eq!(
            planner.choose(dead, TileCoord::new(5, 5)),
            NetworkChoice::Disconnected
        );
        assert_eq!(
            planner.choose(TileCoord::new(5, 5), dead),
            NetworkChoice::Disconnected
        );
        assert_eq!(
            planner.choose(TileCoord::new(5, 5), TileCoord::new(5, 5)),
            NetworkChoice::Disconnected
        );
    }

    #[test]
    fn fully_walled_tile_is_disconnected() {
        let array = TileArray::new(8, 8);
        let centre = TileCoord::new(3, 3);
        let ring: Vec<TileCoord> = array.neighbors(centre).collect();
        let planner = RoutePlanner::new(FaultMap::from_faulty(array, ring));
        assert_eq!(
            planner.choose(centre, TileCoord::new(0, 0)),
            NetworkChoice::Disconnected
        );
    }

    #[test]
    fn table_covers_all_healthy_ordered_pairs() {
        let array = TileArray::new(6, 6);
        let mut rng = seeded_rng(3);
        let faults = FaultMap::sample_uniform(array, 4, &mut rng);
        let planner = RoutePlanner::new(faults.clone());
        let table = planner.build_table();
        let h = faults.healthy_count();
        assert_eq!(table.len(), h * (h - 1));
        assert!(!table.is_empty());
        let s = faults.healthy_tiles().next().expect("healthy tile");
        let d = faults.healthy_tiles().last().expect("healthy tile");
        assert_eq!(table.get(s, d), Some(planner.choose(s, d)));
        assert_eq!(table.get(s, s), None);
    }

    #[test]
    fn relay_rate_is_small_with_few_faults() {
        // The point of the dual network: relays (which steal core cycles)
        // should be rare at realistic fault counts.
        let planner = {
            let mut rng = seeded_rng(77);
            RoutePlanner::new(FaultMap::sample_uniform(
                TileArray::new(16, 16),
                3,
                &mut rng,
            ))
        };
        let table = planner.build_table();
        let (_, _, relay, dead) = table.utilization();
        let frac = (relay + dead) as f64 / table.len() as f64;
        assert!(frac < 0.03, "relay+dead fraction {frac}");
    }

    #[test]
    fn display_summarises_choice() {
        assert_eq!(
            NetworkChoice::Direct(NetworkKind::Xy).to_string(),
            "direct on X-Y network"
        );
        assert!(NetworkChoice::Relay {
            via: TileCoord::new(1, 1),
            first: NetworkKind::Xy,
            second: NetworkKind::Yx,
        }
        .to_string()
        .contains("relay via"));
        assert_eq!(NetworkChoice::Disconnected.to_string(), "disconnected");
    }
}
