//! Cycle-level simulator of the dual-DoR waferscale network (Fig. 7).
//!
//! Each tile's router has, per network, an input FIFO for each of the four
//! sides plus a local injection FIFO; packets are single "flits" (the
//! 100-bit packet matches the 100-bit bus width, Sec. VI), links move one
//! packet per cycle, and arbitration is round-robin per output port.
//! Requests ride the network the kernel chose; responses return on the
//! complementary network so the pair traverses the same tiles in both
//! directions and request/response cycles cannot deadlock. Relayed pairs
//! are re-injected at the intermediate tile, spending its cycles, exactly
//! as the paper's software workaround describes.

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

use rand::{Rng, RngExt as _};
use serde::{Deserialize, Serialize};
use wsp_topo::{FaultMap, TileArray, TileCoord, DIRECTIONS};

use crate::kernel::{NetworkChoice, RoutePlanner};
use crate::routing::{next_hop, NetworkKind};

/// Synthetic traffic patterns for the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TrafficPattern {
    /// Every healthy tile sends to a uniformly random healthy tile.
    UniformRandom,
    /// Tile `(x, y)` sends to `(y, x)` — the classic DoR adversary.
    Transpose,
    /// Tile sends to its east neighbour (wrapping to the row start),
    /// modelling nearest-neighbour stencil exchange.
    NeighborEast,
    /// All tiles send to one hot-spot tile (e.g. a shared-memory home).
    HotSpot {
        /// The congested destination.
        target: TileCoord,
    },
}

impl TrafficPattern {
    /// Destination for a packet injected at `src`, or `None` when the
    /// pattern gives this tile nothing to send (e.g. self-addressed).
    fn destination<R: Rng + ?Sized>(
        &self,
        src: TileCoord,
        healthy: &[TileCoord],
        rng: &mut R,
    ) -> Option<TileCoord> {
        let dst = match *self {
            TrafficPattern::UniformRandom => healthy[rng.random_range(0..healthy.len())],
            TrafficPattern::Transpose => TileCoord::new(src.y, src.x),
            TrafficPattern::NeighborEast => {
                let array_cols = healthy.iter().map(|t| t.x).max().unwrap_or(0) + 1;
                TileCoord::new((src.x + 1) % array_cols, src.y)
            }
            TrafficPattern::HotSpot { target } => target,
        };
        (dst != src).then_some(dst)
    }
}

/// What a packet is doing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PacketKind {
    Request,
    Response,
}

/// A single-flit packet in flight.
#[derive(Debug, Clone, Copy)]
struct Packet {
    id: u64,
    src: TileCoord,
    dst: TileCoord,
    choice: NetworkChoice,
    kind: PacketKind,
    /// Which leg of a relayed route this packet is on (always 0 for
    /// direct routes).
    leg: u8,
    injected_at: u64,
    hops: u32,
}

impl Packet {
    /// The tile this packet is currently heading for on its present leg.
    fn leg_target(&self) -> TileCoord {
        match (self.choice, self.kind, self.leg) {
            (NetworkChoice::Relay { via, .. }, PacketKind::Request, 0) => via,
            (NetworkChoice::Relay { via, .. }, PacketKind::Response, 0) => via,
            _ => self.dst,
        }
    }

    /// The network carrying the present leg.
    fn network(&self) -> NetworkKind {
        match (self.choice, self.kind, self.leg) {
            (NetworkChoice::Direct(n), PacketKind::Request, _) => n,
            (NetworkChoice::Direct(n), PacketKind::Response, _) => n.complement(),
            (NetworkChoice::Relay { first, .. }, PacketKind::Request, 0) => first,
            (NetworkChoice::Relay { second, .. }, PacketKind::Request, _) => second,
            // Response retraces: leg 0 is dst→via on second's complement,
            // leg 1 is via→src on first's complement.
            (NetworkChoice::Relay { second, .. }, PacketKind::Response, 0) => second.complement(),
            (NetworkChoice::Relay { first, .. }, PacketKind::Response, _) => first.complement(),
            (NetworkChoice::Disconnected, _, _) => {
                unreachable!("disconnected packets are never injected")
            }
        }
    }
}

/// Configuration of a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// FIFO depth of each router input queue, in packets.
    pub queue_capacity: usize,
    /// Cycles the destination takes to turn a request into a response.
    pub response_delay: u64,
    /// Per-tile request injection probability per cycle.
    pub injection_rate: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            queue_capacity: 4,
            response_delay: 2,
            injection_rate: 0.02,
        }
    }
}

/// One mesh network's router state: five input FIFOs per tile
/// (N, S, E, W, local injection).
struct Network {
    queues: Vec<[VecDeque<Packet>; 5]>,
    /// Round-robin pointers, one per (tile, output port).
    rr: Vec<[usize; 5]>,
}

const LOCAL: usize = 4;

impl Network {
    fn new(tiles: usize) -> Self {
        Network {
            queues: (0..tiles).map(|_| Default::default()).collect(),
            rr: vec![[0; 5]; tiles],
        }
    }

    fn total_occupancy(&self) -> usize {
        self.queues
            .iter()
            .map(|qs| qs.iter().map(VecDeque::len).sum::<usize>())
            .sum()
    }
}

/// The dual-network simulator.
///
/// # Examples
///
/// ```
/// use wsp_noc::{NocSim, SimConfig, TrafficPattern};
/// use wsp_topo::{FaultMap, TileArray};
///
/// let mut sim = NocSim::new(FaultMap::none(TileArray::new(8, 8)), SimConfig::default());
/// let mut rng = wsp_common::seeded_rng(1);
/// let report = sim.run(TrafficPattern::UniformRandom, 500, &mut rng);
/// assert!(report.responses_delivered > 0);
/// assert_eq!(report.in_flight_at_end, 0);
/// ```
pub struct NocSim {
    array: TileArray,
    planner: RoutePlanner,
    config: SimConfig,
    networks: [Network; 2],
    healthy: Vec<TileCoord>,
    /// Responses waiting out the destination's service delay:
    /// `(ready_cycle, packet)`.
    pending_responses: VecDeque<(u64, Packet)>,
    next_id: u64,
    cycle: u64,
    stats: SimReport,
    /// Per-link traversal counts: `[network][tile][direction]`.
    link_use: [Vec<[u64; 4]>; 2],
}

impl NocSim {
    /// Creates a simulator over the given fault map.
    pub fn new(faults: FaultMap, config: SimConfig) -> Self {
        let array = faults.array();
        let healthy = faults.healthy_tiles().collect();
        let planner = RoutePlanner::new(faults);
        let tiles = array.tile_count();
        NocSim {
            array,
            planner,
            config,
            networks: [Network::new(tiles), Network::new(tiles)],
            healthy,
            pending_responses: VecDeque::new(),
            next_id: 0,
            cycle: 0,
            stats: SimReport::default(),
            link_use: [vec![[0; 4]; tiles], vec![[0; 4]; tiles]],
        }
    }

    /// Traversal count of the link leaving `tile` in direction `dir` on
    /// the given network — the congestion heat map.
    pub fn link_utilization(
        &self,
        network: NetworkKind,
        tile: TileCoord,
        dir: wsp_topo::Direction,
    ) -> u64 {
        self.link_use[network as usize][self.array.index_of(tile)][dir.index()]
    }

    /// The most-used link: `(network, tile, direction, traversals)`.
    pub fn hottest_link(&self) -> Option<(NetworkKind, TileCoord, wsp_topo::Direction, u64)> {
        let mut best: Option<(NetworkKind, TileCoord, wsp_topo::Direction, u64)> = None;
        for (n, per_net) in self.link_use.iter().enumerate() {
            let network = if n == 0 { NetworkKind::Xy } else { NetworkKind::Yx };
            for (idx, dirs) in per_net.iter().enumerate() {
                for (d, &count) in dirs.iter().enumerate() {
                    if count > best.map_or(0, |b| b.3) {
                        best = Some((
                            network,
                            self.array.coord_of(idx),
                            DIRECTIONS[d],
                            count,
                        ));
                    }
                }
            }
        }
        best
    }

    /// The route planner derived from the fault map.
    pub fn planner(&self) -> &RoutePlanner {
        &self.planner
    }

    /// Runs `warm` injection cycles of the given pattern, then drains all
    /// in-flight traffic, returning the accumulated statistics.
    ///
    /// # Panics
    ///
    /// Panics if the network fails to drain (a deadlock), which the
    /// dual-DoR design guarantees cannot happen — the panic is the
    /// regression alarm for that property.
    pub fn run<R: Rng + ?Sized>(
        &mut self,
        pattern: TrafficPattern,
        warm: u64,
        rng: &mut R,
    ) -> SimReport {
        for _ in 0..warm {
            self.inject(pattern, rng);
            self.step();
        }
        // Drain: no new injections; everything in flight must complete.
        let mut idle_cycles = 0u64;
        while self.in_flight() > 0 {
            let before = self.in_flight();
            self.step();
            if self.in_flight() == before {
                idle_cycles += 1;
                assert!(
                    idle_cycles < 10_000,
                    "network failed to drain: deadlock with {} packets in flight",
                    self.in_flight()
                );
            } else {
                idle_cycles = 0;
            }
        }
        let mut report = self.stats.clone();
        report.cycles = self.cycle;
        report.in_flight_at_end = self.in_flight();
        report
    }

    /// Packets currently queued anywhere plus responses pending service.
    pub fn in_flight(&self) -> usize {
        self.networks[0].total_occupancy()
            + self.networks[1].total_occupancy()
            + self.pending_responses.len()
    }

    /// Injects one cycle of traffic per the pattern.
    fn inject<R: Rng + ?Sized>(&mut self, pattern: TrafficPattern, rng: &mut R) {
        // Collect injections first to avoid borrowing conflicts.
        let mut to_inject = Vec::new();
        for &src in &self.healthy {
            if !rng.random_bool(self.config.injection_rate) {
                continue;
            }
            let Some(dst) = pattern.destination(src, &self.healthy, rng) else {
                continue;
            };
            let choice = self.planner.choose(src, dst);
            if choice == NetworkChoice::Disconnected {
                self.stats.undeliverable += 1;
                continue;
            }
            to_inject.push((src, dst, choice));
        }
        for (src, dst, choice) in to_inject {
            let packet = Packet {
                id: self.next_id,
                src,
                dst,
                choice,
                kind: PacketKind::Request,
                leg: 0,
                injected_at: self.cycle,
                hops: 0,
            };
            self.next_id += 1;
            let net = packet.network() as usize;
            let idx = self.array.index_of(src);
            let q = &mut self.networks[net].queues[idx][LOCAL];
            if q.len() < self.config.queue_capacity * 4 {
                q.push_back(packet);
                self.stats.requests_injected += 1;
            } else {
                self.stats.injection_backpressure += 1;
            }
        }
    }

    /// Advances the simulator one cycle.
    fn step(&mut self) {
        self.cycle += 1;

        // Release responses whose service delay has elapsed.
        while let Some(&(ready, _)) = self.pending_responses.front() {
            if ready > self.cycle {
                break;
            }
            let (_, packet) = self.pending_responses.pop_front().expect("non-empty");
            let net = packet.network() as usize;
            let idx = self.array.index_of(packet.src);
            // Local injection queues for responses are allowed to grow —
            // the destination tile buffers them in its local memory.
            self.networks[net].queues[idx][LOCAL].push_back(packet);
        }

        // Two-phase move: plan all transfers against the pre-cycle state,
        // then apply, so a packet moves at most one hop per cycle.
        let mut arrivals: Vec<(usize, usize, usize, Packet)> = Vec::new(); // (net, tile, port, packet)
        let mut deliveries: Vec<Packet> = Vec::new();

        for net_idx in 0..2 {
            for tile_idx in 0..self.array.tile_count() {
                let tile = self.array.coord_of(tile_idx);
                // For each output port, grant one input queue round-robin.
                for out_port in 0..5 {
                    let grant = {
                        let network = &self.networks[net_idx];
                        let queues = &network.queues[tile_idx];
                        let start = network.rr[tile_idx][out_port];
                        (0..5).map(|o| (start + o) % 5).find(|&in_port| {
                            queues[in_port].front().is_some_and(|p| {
                                self.output_port_of(tile, p) == out_port
                            })
                        })
                    };
                    let Some(in_port) = grant else { continue };

                    // Check downstream capacity / delivery.
                    if out_port == LOCAL {
                        let network = &mut self.networks[net_idx];
                        let packet = network.queues[tile_idx][in_port]
                            .pop_front()
                            .expect("granted head");
                        network.rr[tile_idx][out_port] = (in_port + 1) % 5;
                        deliveries.push(packet);
                    } else {
                        let dir = DIRECTIONS[out_port];
                        let Some(nb) = self.array.neighbor(tile, dir) else {
                            unreachable!("DoR never routes off the array");
                        };
                        let nb_idx = self.array.index_of(nb);
                        let in_side = dir.opposite().index();
                        if self.networks[net_idx].queues[nb_idx][in_side].len()
                            < self.config.queue_capacity
                        {
                            let network = &mut self.networks[net_idx];
                            let mut packet = network.queues[tile_idx][in_port]
                                .pop_front()
                                .expect("granted head");
                            network.rr[tile_idx][out_port] = (in_port + 1) % 5;
                            packet.hops += 1;
                            self.stats.link_traversals += 1;
                            self.link_use[net_idx][tile_idx][out_port] += 1;
                            arrivals.push((net_idx, nb_idx, in_side, packet));
                        }
                    }
                }
            }
        }

        for (net, tile, port, packet) in arrivals {
            self.networks[net].queues[tile][port].push_back(packet);
        }

        for packet in deliveries {
            self.deliver(packet);
        }
    }

    /// Output port (0..=3 = direction, 4 = local) for `packet` at `tile`.
    fn output_port_of(&self, tile: TileCoord, packet: &Packet) -> usize {
        let target = packet.leg_target();
        match next_hop(tile, target, packet.network()) {
            None => LOCAL,
            Some(nb) => {
                let dir = DIRECTIONS
                    .into_iter()
                    .find(|d| self.array.neighbor(tile, *d) == Some(nb))
                    .expect("next hop is a neighbour");
                dir.index()
            }
        }
    }

    /// Handles a packet arriving at its current leg target.
    fn deliver(&mut self, mut packet: Packet) {
        match (packet.choice, packet.kind, packet.leg) {
            (NetworkChoice::Relay { .. }, _, 0) => {
                // Relay hop: the intermediate tile re-injects the packet on
                // its second leg, spending a core cycle.
                packet.leg = 1;
                self.stats.relay_forwards += 1;
                let net = packet.network() as usize;
                let at = packet.leg_target(); // recompute after leg bump
                let inject_at = match packet.kind {
                    PacketKind::Request => {
                        // now heading via→dst; it is AT via.
                        match packet.choice {
                            NetworkChoice::Relay { via, .. } => via,
                            _ => unreachable!(),
                        }
                    }
                    PacketKind::Response => match packet.choice {
                        NetworkChoice::Relay { via, .. } => via,
                        _ => unreachable!(),
                    },
                };
                let _ = at;
                let idx = self.array.index_of(inject_at);
                self.networks[net].queues[idx][LOCAL].push_back(packet);
            }
            (_, PacketKind::Request, _) => {
                self.stats.requests_delivered += 1;
                self.stats.request_latency_total += self.cycle - packet.injected_at;
                self.stats.max_request_latency = self
                    .stats
                    .max_request_latency
                    .max(self.cycle - packet.injected_at);
                // Schedule the response on the complementary network.
                let response = Packet {
                    id: packet.id,
                    src: packet.dst,
                    dst: packet.src,
                    choice: swap_relay(packet.choice),
                    kind: PacketKind::Response,
                    leg: 0,
                    injected_at: packet.injected_at,
                    hops: packet.hops,
                };
                self.pending_responses
                    .push_back((self.cycle + self.config.response_delay, response));
            }
            (_, PacketKind::Response, _) => {
                self.stats.responses_delivered += 1;
                let rtt = self.cycle - packet.injected_at;
                self.stats.round_trip_latency_total += rtt;
                self.stats.max_round_trip_latency = self.stats.max_round_trip_latency.max(rtt);
                let bucket = (rtt as usize).min(RTT_HISTOGRAM_BUCKETS - 1);
                if self.stats.rtt_histogram.is_empty() {
                    self.stats.rtt_histogram = vec![0; RTT_HISTOGRAM_BUCKETS];
                }
                self.stats.rtt_histogram[bucket] += 1;
            }
        }
    }
}

/// For a relayed route, the response's "first" leg is dst→via, which is
/// the request's second leg reversed; keep the same via but note the
/// response direction is handled by `Packet::network`.
fn swap_relay(choice: NetworkChoice) -> NetworkChoice {
    choice
}

/// Buckets of the round-trip latency histogram (1 cycle each; the last
/// bucket absorbs the tail).
pub const RTT_HISTOGRAM_BUCKETS: usize = 4096;

/// Accumulated statistics of a simulation run.
#[derive(Debug, Default, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimReport {
    /// Simulated cycles (including the drain phase).
    pub cycles: u64,
    /// Requests accepted into the network.
    pub requests_injected: u64,
    /// Requests that reached their destination tile.
    pub requests_delivered: u64,
    /// Responses that made it back to the original requester.
    pub responses_delivered: u64,
    /// Pairs the kernel declared unreachable at injection time.
    pub undeliverable: u64,
    /// Injections refused because the local queue was saturated.
    pub injection_backpressure: u64,
    /// Relay re-injections performed by intermediate tiles.
    pub relay_forwards: u64,
    /// Total link traversals (one per packet per hop) — the utilisation
    /// numerator.
    pub link_traversals: u64,
    /// Sum of request one-way latencies, in cycles.
    pub request_latency_total: u64,
    /// Worst request one-way latency.
    pub max_request_latency: u64,
    /// Sum of request→response round-trip latencies.
    pub round_trip_latency_total: u64,
    /// Worst round-trip latency.
    pub max_round_trip_latency: u64,
    /// Packets still in flight when the run ended (0 after a drain).
    pub in_flight_at_end: usize,
    /// Round-trip latency histogram (1-cycle buckets, tail-capped).
    pub rtt_histogram: Vec<u64>,
}

impl SimReport {
    /// Mean one-way request latency in cycles.
    pub fn mean_request_latency(&self) -> f64 {
        if self.requests_delivered == 0 {
            0.0
        } else {
            self.request_latency_total as f64 / self.requests_delivered as f64
        }
    }

    /// Mean round-trip latency in cycles.
    pub fn mean_round_trip_latency(&self) -> f64 {
        if self.responses_delivered == 0 {
            0.0
        } else {
            self.round_trip_latency_total as f64 / self.responses_delivered as f64
        }
    }

    /// Round-trip latency at the given percentile (0.0–1.0), from the
    /// histogram. Returns 0 when no responses were delivered.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn rtt_percentile(&self, p: f64) -> u64 {
        assert!((0.0..=1.0).contains(&p), "percentile {p} outside [0, 1]");
        if self.responses_delivered == 0 {
            return 0;
        }
        let target = (p * self.responses_delivered as f64).ceil() as u64;
        let mut seen = 0u64;
        for (latency, &count) in self.rtt_histogram.iter().enumerate() {
            seen += count;
            if seen >= target.max(1) {
                return latency as u64;
            }
        }
        self.max_round_trip_latency
    }

    /// Delivered-request throughput in packets per cycle.
    pub fn throughput(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.requests_delivered as f64 / self.cycles as f64
        }
    }
}

impl fmt::Display for SimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} req in {} cycles: {:.2} pkt/cy, mean lat {:.1}, mean RTT {:.1}",
            self.requests_injected,
            self.cycles,
            self.throughput(),
            self.mean_request_latency(),
            self.mean_round_trip_latency()
        )
    }
}

/// Error type reserved for future fallible sim entry points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimulateError;

impl fmt::Display for SimulateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("simulation failed")
    }
}

impl Error for SimulateError {}

#[cfg(test)]
mod tests {
    use super::*;
    use wsp_common::seeded_rng;

    fn clean_sim(n: u16) -> NocSim {
        NocSim::new(FaultMap::none(TileArray::new(n, n)), SimConfig::default())
    }

    #[test]
    fn every_request_gets_a_response() {
        let mut sim = clean_sim(8);
        let mut rng = seeded_rng(1);
        let report = sim.run(TrafficPattern::UniformRandom, 300, &mut rng);
        assert!(report.requests_injected > 100);
        assert_eq!(report.requests_delivered, report.requests_injected);
        assert_eq!(report.responses_delivered, report.requests_injected);
        assert_eq!(report.in_flight_at_end, 0);
        assert_eq!(report.undeliverable, 0);
    }

    #[test]
    fn latency_reflects_distance() {
        // A single corner-to-corner packet on an empty 8×8 mesh takes
        // 14 hops; with queueing overhead the one-way latency is close.
        let mut sim = clean_sim(8);
        let mut rng = seeded_rng(2);
        // Hot-spot with tiny rate ≈ isolated packets to a fixed target.
        let mut config = SimConfig::default();
        config.injection_rate = 0.001;
        sim.config = config;
        let report = sim.run(
            TrafficPattern::HotSpot {
                target: TileCoord::new(7, 7),
            },
            2000,
            &mut rng,
        );
        assert!(report.requests_delivered > 0);
        let mean = report.mean_request_latency();
        assert!(
            (5.0..25.0).contains(&mean),
            "mean latency {mean} implausible"
        );
        assert!(report.mean_round_trip_latency() > mean);
    }

    #[test]
    fn transpose_traffic_drains_without_deadlock() {
        let mut sim = clean_sim(8);
        let mut rng = seeded_rng(3);
        let mut cfg = SimConfig::default();
        cfg.injection_rate = 0.2; // heavy load
        sim.config = cfg;
        let report = sim.run(TrafficPattern::Transpose, 400, &mut rng);
        assert_eq!(report.responses_delivered, report.requests_injected);
        assert_eq!(report.in_flight_at_end, 0);
    }

    #[test]
    fn hotspot_saturates_but_still_drains() {
        let mut sim = clean_sim(8);
        let mut rng = seeded_rng(4);
        let mut cfg = SimConfig::default();
        cfg.injection_rate = 0.3;
        sim.config = cfg;
        let report = sim.run(
            TrafficPattern::HotSpot {
                target: TileCoord::new(4, 4),
            },
            200,
            &mut rng,
        );
        // The hot spot can only sink a few packets per cycle; backpressure
        // must appear, yet everything injected completes.
        assert_eq!(report.responses_delivered, report.requests_injected);
        assert!(report.max_round_trip_latency > report.mean_round_trip_latency() as u64);
    }

    #[test]
    fn faulty_tiles_do_not_break_the_rest() {
        let array = TileArray::new(8, 8);
        let mut rng = seeded_rng(5);
        let faults = FaultMap::sample_uniform(array, 4, &mut rng);
        let mut sim = NocSim::new(faults, SimConfig::default());
        let report = sim.run(TrafficPattern::UniformRandom, 300, &mut rng);
        assert!(report.requests_injected > 0);
        assert_eq!(report.responses_delivered, report.requests_injected);
        assert_eq!(report.in_flight_at_end, 0);
    }

    #[test]
    fn relayed_pairs_complete_round_trips() {
        // Same-row pair with the row blocked: only a relay connects them.
        let array = TileArray::new(8, 8);
        let faults = FaultMap::from_faulty(array, [TileCoord::new(4, 3)]);
        let mut sim = NocSim::new(faults, SimConfig::default());
        let planner_choice = sim
            .planner()
            .choose(TileCoord::new(0, 3), TileCoord::new(7, 3));
        assert!(matches!(planner_choice, NetworkChoice::Relay { .. }));

        // Inject a hot-spot pattern aimed at (7,3) from everywhere; the
        // (0,3) source must use the relay.
        let mut rng = seeded_rng(6);
        let mut cfg = SimConfig::default();
        cfg.injection_rate = 0.05;
        sim.config = cfg;
        let report = sim.run(
            TrafficPattern::HotSpot {
                target: TileCoord::new(7, 3),
            },
            500,
            &mut rng,
        );
        assert!(report.relay_forwards > 0, "no relays exercised");
        assert_eq!(report.responses_delivered, report.requests_injected);
    }

    #[test]
    fn neighbor_traffic_has_low_latency() {
        let mut sim = clean_sim(8);
        let mut rng = seeded_rng(7);
        let report = sim.run(TrafficPattern::NeighborEast, 300, &mut rng);
        assert!(report.requests_delivered > 0);
        // Most hops are 1 (wrap-around pairs are longer).
        assert!(report.mean_request_latency() < 8.0);
    }

    #[test]
    fn link_utilization_concentrates_at_the_hotspot() {
        let mut sim = clean_sim(8);
        let mut rng = seeded_rng(15);
        let target = TileCoord::new(4, 4);
        let report = sim.run(TrafficPattern::HotSpot { target }, 300, &mut rng);
        assert!(report.link_traversals > 0);
        let (_, tile, _, count) = sim.hottest_link().expect("links used");
        // The hottest link feeds the hot spot's immediate neighbourhood.
        assert!(tile.manhattan_distance(target) <= 2, "hottest at {tile}");
        assert!(count > 50);
        // Per-link counts sum to the total traversal counter.
        let mut sum = 0u64;
        for net in [NetworkKind::Xy, NetworkKind::Yx] {
            for t in TileArray::new(8, 8).tiles() {
                for d in wsp_topo::DIRECTIONS {
                    sum += sim.link_utilization(net, t, d);
                }
            }
        }
        assert_eq!(sum, report.link_traversals);
    }

    #[test]
    fn rtt_percentiles_are_ordered_and_bounded() {
        let mut sim = clean_sim(8);
        let mut rng = seeded_rng(9);
        let report = sim.run(TrafficPattern::UniformRandom, 400, &mut rng);
        let p50 = report.rtt_percentile(0.5);
        let p99 = report.rtt_percentile(0.99);
        assert!(p50 > 0);
        assert!(p50 <= p99);
        assert!(p99 <= report.max_round_trip_latency);
        let mean = report.mean_round_trip_latency();
        assert!((p50 as f64) < mean * 2.0);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn bad_percentile_rejected() {
        let _ = SimReport::default().rtt_percentile(1.5);
    }

    #[test]
    fn report_display_and_derived_stats() {
        let mut sim = clean_sim(4);
        let mut rng = seeded_rng(8);
        let report = sim.run(TrafficPattern::UniformRandom, 200, &mut rng);
        let s = report.to_string();
        assert!(s.contains("req in"));
        assert!(report.throughput() > 0.0);
        let empty = SimReport::default();
        assert_eq!(empty.mean_request_latency(), 0.0);
        assert_eq!(empty.mean_round_trip_latency(), 0.0);
        assert_eq!(empty.throughput(), 0.0);
    }
}
