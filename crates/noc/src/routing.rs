//! Dimension-ordered routing on the waferscale mesh.
//!
//! Both networks use deterministic dimension-ordered routing (DoR) to stay
//! deadlock-free: the X-Y network exhausts horizontal hops before turning,
//! the Y-X network the opposite. A packet's path is therefore a function of
//! its endpoints only, which is what makes the O(1) prefix-sum connectivity
//! analysis in [`crate::connectivity`] possible.

use std::fmt;

use serde::{Deserialize, Serialize};
use wsp_topo::{FaultMap, TileCoord};

/// Which of the two independent mesh networks a packet rides.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NetworkKind {
    /// Dimension-ordered X-then-Y routing.
    Xy,
    /// Dimension-ordered Y-then-X routing.
    Yx,
}

impl NetworkKind {
    /// The complementary network — responses to requests sent on `self`
    /// return on this one so both directions traverse the same tiles
    /// (Fig. 7).
    #[inline]
    pub fn complement(self) -> NetworkKind {
        match self {
            NetworkKind::Xy => NetworkKind::Yx,
            NetworkKind::Yx => NetworkKind::Xy,
        }
    }
}

impl fmt::Display for NetworkKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkKind::Xy => f.write_str("X-Y network"),
            NetworkKind::Yx => f.write_str("Y-X network"),
        }
    }
}

/// The dimension-ordered path from `from` to `to` on the given network,
/// including both endpoints.
///
/// # Examples
///
/// ```
/// use wsp_noc::{dor_path, NetworkKind};
/// use wsp_topo::TileCoord;
///
/// let path = dor_path(TileCoord::new(0, 0), TileCoord::new(2, 1), NetworkKind::Xy);
/// assert_eq!(path.len(), 4); // (0,0) → (1,0) → (2,0) → (2,1)
/// ```
pub fn dor_path(from: TileCoord, to: TileCoord, network: NetworkKind) -> Vec<TileCoord> {
    let mut path = Vec::with_capacity(from.manhattan_distance(to) as usize + 1);
    let mut cur = from;
    path.push(cur);
    let step_x = |cur: &mut TileCoord, path: &mut Vec<TileCoord>| {
        while cur.x != to.x {
            cur.x = if to.x > cur.x { cur.x + 1 } else { cur.x - 1 };
            path.push(*cur);
        }
    };
    let step_y = |cur: &mut TileCoord, path: &mut Vec<TileCoord>| {
        while cur.y != to.y {
            cur.y = if to.y > cur.y { cur.y + 1 } else { cur.y - 1 };
            path.push(*cur);
        }
    };
    match network {
        NetworkKind::Xy => {
            step_x(&mut cur, &mut path);
            step_y(&mut cur, &mut path);
        }
        NetworkKind::Yx => {
            step_y(&mut cur, &mut path);
            step_x(&mut cur, &mut path);
        }
    }
    path
}

/// Whether every tile on the DoR path between two tiles (endpoints
/// included) is healthy, i.e. whether a packet can actually traverse it.
///
/// # Panics
///
/// Panics if either endpoint lies outside the fault map's array.
pub fn path_is_healthy(
    faults: &FaultMap,
    from: TileCoord,
    to: TileCoord,
    network: NetworkKind,
) -> bool {
    dor_path(from, to, network)
        .into_iter()
        .all(|t| faults.is_healthy(t))
}

/// The next hop a router at `at` takes towards `to` on `network`, or
/// `None` when `at == to` (local delivery).
pub fn next_hop(at: TileCoord, to: TileCoord, network: NetworkKind) -> Option<TileCoord> {
    if at == to {
        return None;
    }
    let toward_x = |at: TileCoord| {
        Some(TileCoord::new(
            if to.x > at.x { at.x + 1 } else { at.x - 1 },
            at.y,
        ))
    };
    let toward_y = |at: TileCoord| {
        Some(TileCoord::new(
            at.x,
            if to.y > at.y { at.y + 1 } else { at.y - 1 },
        ))
    };
    match network {
        NetworkKind::Xy => {
            if at.x != to.x {
                toward_x(at)
            } else {
                toward_y(at)
            }
        }
        NetworkKind::Yx => {
            if at.y != to.y {
                toward_y(at)
            } else {
                toward_x(at)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsp_topo::TileArray;

    #[test]
    fn xy_path_goes_x_first() {
        let path = dor_path(TileCoord::new(1, 1), TileCoord::new(4, 3), NetworkKind::Xy);
        assert_eq!(
            path,
            vec![
                TileCoord::new(1, 1),
                TileCoord::new(2, 1),
                TileCoord::new(3, 1),
                TileCoord::new(4, 1),
                TileCoord::new(4, 2),
                TileCoord::new(4, 3),
            ]
        );
    }

    #[test]
    fn yx_path_goes_y_first() {
        let path = dor_path(TileCoord::new(1, 1), TileCoord::new(4, 3), NetworkKind::Yx);
        assert_eq!(
            path,
            vec![
                TileCoord::new(1, 1),
                TileCoord::new(1, 2),
                TileCoord::new(1, 3),
                TileCoord::new(2, 3),
                TileCoord::new(3, 3),
                TileCoord::new(4, 3),
            ]
        );
    }

    #[test]
    fn paths_handle_negative_offsets() {
        let path = dor_path(TileCoord::new(4, 3), TileCoord::new(1, 1), NetworkKind::Xy);
        assert_eq!(path.first(), Some(&TileCoord::new(4, 3)));
        assert_eq!(path.last(), Some(&TileCoord::new(1, 1)));
        assert_eq!(path.len(), 6);
    }

    #[test]
    fn degenerate_path_is_single_tile() {
        let t = TileCoord::new(2, 2);
        assert_eq!(dor_path(t, t, NetworkKind::Xy), vec![t]);
        assert_eq!(next_hop(t, t, NetworkKind::Yx), None);
    }

    #[test]
    fn request_and_response_share_the_physical_path() {
        // Fig. 7: request A→B on X-Y, response B→A on Y-X traverse the
        // same set of tiles (in opposite orders).
        let a = TileCoord::new(2, 7);
        let b = TileCoord::new(9, 3);
        let mut request = dor_path(a, b, NetworkKind::Xy);
        let response = dor_path(b, a, NetworkKind::Yx);
        request.reverse();
        assert_eq!(request, response);
    }

    #[test]
    fn colinear_pairs_have_identical_paths_on_both_networks() {
        let a = TileCoord::new(2, 5);
        let b = TileCoord::new(9, 5);
        assert_eq!(
            dor_path(a, b, NetworkKind::Xy),
            dor_path(a, b, NetworkKind::Yx)
        );
    }

    #[test]
    fn next_hop_walks_the_path() {
        for network in [NetworkKind::Xy, NetworkKind::Yx] {
            let from = TileCoord::new(6, 1);
            let to = TileCoord::new(2, 4);
            let path = dor_path(from, to, network);
            let mut cur = from;
            for expected in &path[1..] {
                cur = next_hop(cur, to, network).expect("not at destination");
                assert_eq!(cur, *expected);
            }
            assert_eq!(next_hop(cur, to, network), None);
        }
    }

    #[test]
    fn path_health_respects_faults() {
        let array = TileArray::new(8, 8);
        let a = TileCoord::new(0, 0);
        let b = TileCoord::new(7, 7);
        // Fault on the XY path (corner (7,0)? no — XY path goes along row 0
        // then column 7). Block row 0.
        let faults = FaultMap::from_faulty(array, [TileCoord::new(4, 0)]);
        assert!(!path_is_healthy(&faults, a, b, NetworkKind::Xy));
        assert!(path_is_healthy(&faults, a, b, NetworkKind::Yx));
        // Faulty endpoint blocks both.
        let dead_src = FaultMap::from_faulty(array, [a]);
        assert!(!path_is_healthy(&dead_src, a, b, NetworkKind::Xy));
        assert!(!path_is_healthy(&dead_src, a, b, NetworkKind::Yx));
    }

    #[test]
    fn complement_is_involutive() {
        assert_eq!(NetworkKind::Xy.complement(), NetworkKind::Yx);
        assert_eq!(NetworkKind::Yx.complement().complement(), NetworkKind::Yx);
    }

    #[test]
    fn display_names_networks() {
        assert_eq!(NetworkKind::Xy.to_string(), "X-Y network");
        assert_eq!(NetworkKind::Yx.to_string(), "Y-X network");
    }

    #[test]
    fn path_length_is_manhattan_plus_one() {
        let mut rng = wsp_common::seeded_rng(5);
        use rand::RngExt;
        for _ in 0..200 {
            let a = TileCoord::new(rng.random_range(0..32), rng.random_range(0..32));
            let b = TileCoord::new(rng.random_range(0..32), rng.random_range(0..32));
            for network in [NetworkKind::Xy, NetworkKind::Yx] {
                assert_eq!(
                    dor_path(a, b, network).len() as u32,
                    a.manhattan_distance(b) + 1
                );
            }
        }
    }
}
