//! Synthetic-traffic simulation on top of the reusable [`Fabric`] engine
//! (Fig. 7).
//!
//! This layer owns everything endpoint-specific about a latency/throughput
//! study: the [`TrafficPattern`] generators, per-cycle Bernoulli injection,
//! the destination's service delay before a response is generated, and the
//! accumulated [`SimReport`] statistics. All queueing, arbitration, and
//! relay behaviour comes from the shared [`Fabric`] — the same engine the
//! ISA-level machine in `waferscale` routes its remote memory traffic
//! through — so congestion numbers measured here transfer directly to
//! workload execution.

use std::error::Error;
use std::fmt;

use rand::{Rng, RngExt as _};
use serde::{Deserialize, Serialize};
use wsp_common::parallel::Stepping;
use wsp_common::wheel::EventWheel;
use wsp_topo::{FaultMap, TileArray, TileCoord};

use crate::fabric::{Fabric, FabricPacket, PacketKind};
use crate::kernel::{NetworkChoice, RoutePlanner};
use crate::routing::NetworkKind;

/// Synthetic traffic patterns for the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TrafficPattern {
    /// Every healthy tile sends to a uniformly random healthy tile.
    UniformRandom,
    /// Tile `(x, y)` sends to `(y, x)` — the classic DoR adversary.
    Transpose,
    /// Tile sends to its east neighbour (wrapping to the row start),
    /// modelling nearest-neighbour stencil exchange.
    NeighborEast,
    /// All tiles send to one hot-spot tile (e.g. a shared-memory home).
    HotSpot {
        /// The congested destination.
        target: TileCoord,
    },
}

impl TrafficPattern {
    /// Destination for a packet injected at `src`, or `None` when the
    /// pattern gives this tile nothing to send (e.g. self-addressed).
    ///
    /// `array` supplies the geometry: `NeighborEast` wraps at the array's
    /// real column count, so a faulty rightmost column narrows the healthy
    /// set without silently changing the pattern.
    fn destination<R: Rng + ?Sized>(
        &self,
        src: TileCoord,
        array: TileArray,
        healthy: &[TileCoord],
        rng: &mut R,
    ) -> Option<TileCoord> {
        let dst = match *self {
            TrafficPattern::UniformRandom => healthy[rng.random_range(0..healthy.len())],
            TrafficPattern::Transpose => TileCoord::new(src.y, src.x),
            TrafficPattern::NeighborEast => TileCoord::new((src.x + 1) % array.cols(), src.y),
            TrafficPattern::HotSpot { target } => target,
        };
        (dst != src).then_some(dst)
    }
}

/// Configuration of a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// FIFO depth of each router input queue, in packets.
    pub queue_capacity: usize,
    /// Cycles the destination takes to turn a request into a response.
    pub response_delay: u64,
    /// Per-tile request injection probability per cycle.
    pub injection_rate: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            queue_capacity: 4,
            response_delay: 2,
            injection_rate: 0.02,
        }
    }
}

/// The dual-network synthetic-traffic simulator.
///
/// # Examples
///
/// ```
/// use wsp_noc::{NocSim, SimConfig, TrafficPattern};
/// use wsp_topo::{FaultMap, TileArray};
///
/// let mut sim = NocSim::new(FaultMap::none(TileArray::new(8, 8)), SimConfig::default());
/// let mut rng = wsp_common::seeded_rng(1);
/// let report = sim.run(TrafficPattern::UniformRandom, 500, &mut rng);
/// assert!(report.responses_delivered > 0);
/// assert_eq!(report.in_flight_at_end, 0);
/// ```
pub struct NocSim {
    array: TileArray,
    planner: RoutePlanner,
    config: SimConfig,
    fabric: Fabric,
    healthy: Vec<TileCoord>,
    /// Responses waiting out the destination's service delay, keyed by
    /// ready cycle. The wheel pops in `(ready, scheduling)` order, which
    /// under the constant `response_delay` is exactly the FIFO order the
    /// old deque released them in — and its `next_at` is the deadline the
    /// wheel-stepping mode jumps the clock to when the fabric is empty.
    pending_responses: EventWheel<FabricPacket>,
    stats: SimReport,
    /// Reusable per-step delivery buffer ([`Fabric::tick_into`] clears
    /// it), so the steady-state step allocates nothing.
    delivered_buf: Vec<FabricPacket>,
    /// Reusable per-cycle injection staging buffer.
    inject_buf: Vec<(TileCoord, TileCoord, NetworkChoice)>,
}

impl NocSim {
    /// Creates a simulator over the given fault map.
    pub fn new(faults: FaultMap, config: SimConfig) -> Self {
        let array = faults.array();
        let healthy = faults.healthy_tiles().collect();
        let planner = RoutePlanner::new(faults);
        NocSim {
            array,
            planner,
            config,
            fabric: Fabric::new(array, config.queue_capacity),
            healthy,
            pending_responses: EventWheel::new(),
            stats: SimReport::default(),
            delivered_buf: Vec::new(),
            inject_buf: Vec::new(),
        }
    }

    /// The underlying fabric engine (per-link statistics live here).
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// Mutable fabric access, e.g. to install a telemetry sink before a
    /// run with [`Fabric::set_sink`].
    pub fn fabric_mut(&mut self) -> &mut Fabric {
        &mut self.fabric
    }

    /// Traversal count of the link leaving `tile` in direction `dir` on
    /// the given network — the congestion heat map.
    pub fn link_utilization(
        &self,
        network: NetworkKind,
        tile: TileCoord,
        dir: wsp_topo::Direction,
    ) -> u64 {
        self.fabric.link_utilization(network, tile, dir)
    }

    /// The most-used link: `(network, tile, direction, traversals)`.
    pub fn hottest_link(&self) -> Option<(NetworkKind, TileCoord, wsp_topo::Direction, u64)> {
        self.fabric.hottest_link()
    }

    /// The route planner derived from the fault map.
    pub fn planner(&self) -> &RoutePlanner {
        &self.planner
    }

    /// Runs `warm` injection cycles of the given pattern, then drains all
    /// in-flight traffic, returning the accumulated statistics.
    ///
    /// # Panics
    ///
    /// Panics if the network fails to drain (a deadlock), which the
    /// dual-DoR design guarantees cannot happen — the panic is the
    /// regression alarm for that property.
    pub fn run<R: Rng + ?Sized>(
        &mut self,
        pattern: TrafficPattern,
        warm: u64,
        rng: &mut R,
    ) -> SimReport {
        if self.config.injection_rate == 0.0 && self.fabric.stepping() == Stepping::Wheel {
            // Nothing will ever inject: the whole warm window is one
            // event-free jump. (The dense sweep burns one RNG draw per
            // healthy tile per cycle on the rate-0 Bernoulli trial; the
            // stream position is unobservable in the report, which is
            // what the wheel-vs-dense equality tests pin down.)
            self.advance_idle(warm);
        } else {
            for _ in 0..warm {
                self.inject(pattern, rng);
                self.step();
            }
        }
        self.drain_in_flight();
        self.finish_report()
    }

    /// Runs `bursts` rounds of `burst_len` injection cycles separated by
    /// `gap` idle cycles, then drains — the synchronisation-phase traffic
    /// shape (compute quietly, exchange in a burst) where event-wheel
    /// stepping pays off: the dense sweep ticks every idle gap cycle,
    /// the wheel jumps them.
    ///
    /// # Panics
    ///
    /// Panics if the network fails to drain (a deadlock), as in
    /// [`NocSim::run`].
    pub fn run_bursts<R: Rng + ?Sized>(
        &mut self,
        pattern: TrafficPattern,
        bursts: u64,
        burst_len: u64,
        gap: u64,
        rng: &mut R,
    ) -> SimReport {
        for _ in 0..bursts {
            for _ in 0..burst_len {
                self.inject(pattern, rng);
                self.step();
            }
            self.advance_idle(gap);
        }
        self.drain_in_flight();
        self.finish_report()
    }

    /// Advances exactly `cycles` cycles with no new injections. In-flight
    /// traffic keeps moving; under [`Stepping::Wheel`] any tail of the
    /// window in which the fabric is empty is jumped rather than ticked
    /// (landing one cycle *before* the next pending response so the
    /// release step runs normally) — bit-identical to stepping it.
    pub fn advance_idle(&mut self, cycles: u64) {
        let end = self.fabric.cycle() + cycles;
        while self.fabric.cycle() < end {
            if self.fabric.stepping() == Stepping::Wheel && self.fabric.in_flight() == 0 {
                let horizon = self
                    .pending_responses
                    .next_at()
                    .map_or(end, |ready| ready.saturating_sub(1).min(end));
                let gap = horizon.saturating_sub(self.fabric.cycle());
                if gap > 0 {
                    self.fabric.skip_cycles(gap);
                    continue;
                }
            }
            self.step();
        }
    }

    /// Drains all in-flight traffic: no new injections; everything in
    /// flight must complete.
    fn drain_in_flight(&mut self) {
        let mut idle_cycles = 0u64;
        while self.in_flight() > 0 {
            let before = self.in_flight();
            self.skip_to_next_event();
            self.step();
            if self.in_flight() == before {
                idle_cycles += 1;
                assert!(
                    idle_cycles < 10_000,
                    "network failed to drain: deadlock with {} packets in flight",
                    self.in_flight()
                );
            } else {
                idle_cycles = 0;
            }
        }
    }

    /// Under [`Stepping::Wheel`], jumps an empty fabric to one cycle
    /// before the earliest pending response, so the next [`NocSim::step`]
    /// releases it exactly when the dense sweep would. No-op otherwise.
    fn skip_to_next_event(&mut self) {
        if self.fabric.stepping() != Stepping::Wheel || self.fabric.in_flight() != 0 {
            return;
        }
        let Some(ready) = self.pending_responses.next_at() else {
            return;
        };
        let gap = ready.saturating_sub(1).saturating_sub(self.fabric.cycle());
        self.fabric.skip_cycles(gap);
    }

    /// Snapshots the accumulated statistics plus the fabric's counters.
    fn finish_report(&mut self) -> SimReport {
        let mut report = self.stats.clone();
        report.cycles = self.fabric.cycle();
        report.relay_forwards = self.fabric.relay_forwards();
        report.link_traversals = self.fabric.link_traversals();
        report.total_stall_cycles = self.fabric.total_stall_cycles();
        report.peak_link_occupancy = self.fabric.peak_link_occupancy();
        report.in_flight_at_end = self.in_flight();
        report
    }

    /// Packets currently queued anywhere plus responses pending service.
    pub fn in_flight(&self) -> usize {
        self.fabric.in_flight() + self.pending_responses.len()
    }

    /// Injects one cycle of traffic per the pattern.
    fn inject<R: Rng + ?Sized>(&mut self, pattern: TrafficPattern, rng: &mut R) {
        // Stage injections first to avoid borrowing conflicts; the
        // buffer is owned and reused across cycles.
        let mut to_inject = std::mem::take(&mut self.inject_buf);
        to_inject.clear();
        for &src in &self.healthy {
            if !rng.random_bool(self.config.injection_rate) {
                continue;
            }
            let Some(dst) = pattern.destination(src, self.array, &self.healthy, rng) else {
                continue;
            };
            let choice = self.planner.choose(src, dst);
            if choice == NetworkChoice::Disconnected {
                self.stats.undeliverable += 1;
                continue;
            }
            to_inject.push((src, dst, choice));
        }
        for &(src, dst, choice) in &to_inject {
            // Ids advance even when the injection is refused, so packet
            // id sequences are stable under backpressure.
            let id = self.fabric.allocate_id();
            let packet = FabricPacket::request(id, src, dst, choice, self.fabric.cycle());
            if self.fabric.inject(packet) {
                self.stats.requests_injected += 1;
            } else {
                self.stats.injection_backpressure += 1;
            }
        }
        self.inject_buf = to_inject;
    }

    /// Advances the simulator one cycle.
    fn step(&mut self) {
        // Release responses whose service delay has elapsed; they join
        // this cycle's arbitration exactly as in-network packets do.
        // The wheel pops in (ready, scheduling) order — FIFO under the
        // constant response delay.
        let next_cycle = self.fabric.cycle() + 1;
        for packet in self.pending_responses.pop_due(next_cycle) {
            // Local injection queues for responses are allowed to grow —
            // the destination tile buffers them in its local memory.
            self.fabric.inject_unbounded(packet);
        }

        let mut delivered = std::mem::take(&mut self.delivered_buf);
        self.fabric.tick_into(&mut delivered);
        for &packet in &delivered {
            self.handle_delivery(packet);
        }
        self.delivered_buf = delivered;
    }

    /// Handles a packet arriving at its final endpoint.
    fn handle_delivery(&mut self, packet: FabricPacket) {
        let now = self.fabric.cycle();
        match packet.kind {
            PacketKind::Request => {
                self.stats.requests_delivered += 1;
                self.stats.request_latency_total += now - packet.injected_at;
                self.stats.max_request_latency =
                    self.stats.max_request_latency.max(now - packet.injected_at);
                // Schedule the response on the complementary network.
                let response = FabricPacket::response(&packet);
                self.pending_responses
                    .schedule(now + self.config.response_delay, response);
            }
            PacketKind::Response => {
                self.stats.responses_delivered += 1;
                let rtt = now - packet.injected_at;
                self.stats.round_trip_latency_total += rtt;
                self.stats.max_round_trip_latency = self.stats.max_round_trip_latency.max(rtt);
                let bucket = (rtt as usize).min(RTT_HISTOGRAM_BUCKETS - 1);
                if self.stats.rtt_histogram.is_empty() {
                    self.stats.rtt_histogram = vec![0; RTT_HISTOGRAM_BUCKETS];
                }
                self.stats.rtt_histogram[bucket] += 1;
            }
        }
    }
}

/// Buckets of the round-trip latency histogram (1 cycle each; the last
/// bucket absorbs the tail).
pub const RTT_HISTOGRAM_BUCKETS: usize = 4096;

/// Accumulated statistics of a simulation run.
#[derive(Debug, Default, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimReport {
    /// Simulated cycles (including the drain phase).
    pub cycles: u64,
    /// Requests accepted into the network.
    pub requests_injected: u64,
    /// Requests that reached their destination tile.
    pub requests_delivered: u64,
    /// Responses that made it back to the original requester.
    pub responses_delivered: u64,
    /// Pairs the kernel declared unreachable at injection time.
    pub undeliverable: u64,
    /// Injections refused because the local queue was saturated.
    pub injection_backpressure: u64,
    /// Relay re-injections performed by intermediate tiles.
    pub relay_forwards: u64,
    /// Total link traversals (one per packet per hop) — the utilisation
    /// numerator.
    pub link_traversals: u64,
    /// Cycles arbitration winners spent stalled on full downstream FIFOs.
    pub total_stall_cycles: u64,
    /// Highest occupancy any link input FIFO reached.
    pub peak_link_occupancy: usize,
    /// Sum of request one-way latencies, in cycles.
    pub request_latency_total: u64,
    /// Worst request one-way latency.
    pub max_request_latency: u64,
    /// Sum of request→response round-trip latencies.
    pub round_trip_latency_total: u64,
    /// Worst round-trip latency.
    pub max_round_trip_latency: u64,
    /// Packets still in flight when the run ended (0 after a drain).
    pub in_flight_at_end: usize,
    /// Round-trip latency histogram (1-cycle buckets, tail-capped).
    pub rtt_histogram: Vec<u64>,
}

impl SimReport {
    /// Mean one-way request latency in cycles.
    pub fn mean_request_latency(&self) -> f64 {
        if self.requests_delivered == 0 {
            0.0
        } else {
            self.request_latency_total as f64 / self.requests_delivered as f64
        }
    }

    /// Mean round-trip latency in cycles.
    pub fn mean_round_trip_latency(&self) -> f64 {
        if self.responses_delivered == 0 {
            0.0
        } else {
            self.round_trip_latency_total as f64 / self.responses_delivered as f64
        }
    }

    /// Round-trip latency at the given percentile (0.0–1.0), from the
    /// histogram. Returns 0 when no responses were delivered.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn rtt_percentile(&self, p: f64) -> u64 {
        assert!((0.0..=1.0).contains(&p), "percentile {p} outside [0, 1]");
        if self.responses_delivered == 0 {
            return 0;
        }
        let target = (p * self.responses_delivered as f64).ceil() as u64;
        let mut seen = 0u64;
        for (latency, &count) in self.rtt_histogram.iter().enumerate() {
            seen += count;
            if seen >= target.max(1) {
                return latency as u64;
            }
        }
        self.max_round_trip_latency
    }

    /// Delivered-request throughput in packets per cycle.
    pub fn throughput(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.requests_delivered as f64 / self.cycles as f64
        }
    }
}

impl fmt::Display for SimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} req in {} cycles: {:.2} pkt/cy, mean lat {:.1}, mean RTT {:.1}",
            self.requests_injected,
            self.cycles,
            self.throughput(),
            self.mean_request_latency(),
            self.mean_round_trip_latency()
        )
    }
}

/// Error type reserved for future fallible sim entry points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimulateError;

impl fmt::Display for SimulateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("simulation failed")
    }
}

impl Error for SimulateError {}

#[cfg(test)]
mod tests {
    use super::*;
    use wsp_common::seeded_rng;

    fn clean_sim(n: u16) -> NocSim {
        NocSim::new(FaultMap::none(TileArray::new(n, n)), SimConfig::default())
    }

    #[test]
    fn every_request_gets_a_response() {
        let mut sim = clean_sim(8);
        let mut rng = seeded_rng(1);
        let report = sim.run(TrafficPattern::UniformRandom, 300, &mut rng);
        assert!(report.requests_injected > 100);
        assert_eq!(report.requests_delivered, report.requests_injected);
        assert_eq!(report.responses_delivered, report.requests_injected);
        assert_eq!(report.in_flight_at_end, 0);
        assert_eq!(report.undeliverable, 0);
    }

    #[test]
    fn latency_reflects_distance() {
        // A single corner-to-corner packet on an empty 8×8 mesh takes
        // 14 hops; with queueing overhead the one-way latency is close.
        let mut sim = clean_sim(8);
        let mut rng = seeded_rng(2);
        // Hot-spot with tiny rate ≈ isolated packets to a fixed target.
        let config = SimConfig {
            injection_rate: 0.001,
            ..SimConfig::default()
        };
        sim.config = config;
        let report = sim.run(
            TrafficPattern::HotSpot {
                target: TileCoord::new(7, 7),
            },
            2000,
            &mut rng,
        );
        assert!(report.requests_delivered > 0);
        let mean = report.mean_request_latency();
        assert!(
            (5.0..25.0).contains(&mean),
            "mean latency {mean} implausible"
        );
        assert!(report.mean_round_trip_latency() > mean);
    }

    #[test]
    fn transpose_traffic_drains_without_deadlock() {
        let mut sim = clean_sim(8);
        let mut rng = seeded_rng(3);
        let cfg = SimConfig {
            injection_rate: 0.2, // heavy load
            ..SimConfig::default()
        };
        sim.config = cfg;
        let report = sim.run(TrafficPattern::Transpose, 400, &mut rng);
        assert_eq!(report.responses_delivered, report.requests_injected);
        assert_eq!(report.in_flight_at_end, 0);
    }

    #[test]
    fn hotspot_saturates_but_still_drains() {
        let mut sim = clean_sim(8);
        let mut rng = seeded_rng(4);
        let cfg = SimConfig {
            injection_rate: 0.3,
            ..SimConfig::default()
        };
        sim.config = cfg;
        let report = sim.run(
            TrafficPattern::HotSpot {
                target: TileCoord::new(4, 4),
            },
            200,
            &mut rng,
        );
        // The hot spot can only sink a few packets per cycle; backpressure
        // must appear, yet everything injected completes.
        assert_eq!(report.responses_delivered, report.requests_injected);
        assert!(report.max_round_trip_latency > report.mean_round_trip_latency() as u64);
        // The fabric's contention counters must light up under saturation.
        assert!(report.total_stall_cycles > 0);
        assert!(report.peak_link_occupancy > 0);
    }

    #[test]
    fn faulty_tiles_do_not_break_the_rest() {
        let array = TileArray::new(8, 8);
        let mut rng = seeded_rng(5);
        let faults = FaultMap::sample_uniform(array, 4, &mut rng);
        let mut sim = NocSim::new(faults, SimConfig::default());
        let report = sim.run(TrafficPattern::UniformRandom, 300, &mut rng);
        assert!(report.requests_injected > 0);
        assert_eq!(report.responses_delivered, report.requests_injected);
        assert_eq!(report.in_flight_at_end, 0);
    }

    #[test]
    fn relayed_pairs_complete_round_trips() {
        // Same-row pair with the row blocked: only a relay connects them.
        let array = TileArray::new(8, 8);
        let faults = FaultMap::from_faulty(array, [TileCoord::new(4, 3)]);
        let mut sim = NocSim::new(faults, SimConfig::default());
        let planner_choice = sim
            .planner()
            .choose(TileCoord::new(0, 3), TileCoord::new(7, 3));
        assert!(matches!(planner_choice, NetworkChoice::Relay { .. }));

        // Inject a hot-spot pattern aimed at (7,3) from everywhere; the
        // (0,3) source must use the relay.
        let mut rng = seeded_rng(6);
        let cfg = SimConfig {
            injection_rate: 0.05,
            ..SimConfig::default()
        };
        sim.config = cfg;
        let report = sim.run(
            TrafficPattern::HotSpot {
                target: TileCoord::new(7, 3),
            },
            500,
            &mut rng,
        );
        assert!(report.relay_forwards > 0, "no relays exercised");
        assert_eq!(report.responses_delivered, report.requests_injected);
    }

    #[test]
    fn neighbor_traffic_has_low_latency() {
        let mut sim = clean_sim(8);
        let mut rng = seeded_rng(7);
        let report = sim.run(TrafficPattern::NeighborEast, 300, &mut rng);
        assert!(report.requests_delivered > 0);
        // Most hops are 1 (wrap-around pairs are longer).
        assert!(report.mean_request_latency() < 8.0);
    }

    #[test]
    fn neighbor_wrap_uses_array_width_not_healthy_extent() {
        // Whole rightmost column faulty: column 7's tiles are gone, so
        // column 6 must still wrap to column 0 of the real 8-wide array —
        // the kernel then reports those pairs per the fault map rather
        // than silently re-shaping the pattern to a 7-wide array.
        let array = TileArray::new(8, 8);
        let faults = FaultMap::from_faulty(array, (0..8).map(|y| TileCoord::new(7, y)));
        let healthy: Vec<TileCoord> = faults.healthy_tiles().collect();
        let mut rng = seeded_rng(21);
        let pattern = TrafficPattern::NeighborEast;
        let src = TileCoord::new(6, 2);
        let dst = pattern
            .destination(src, array, &healthy, &mut rng)
            .expect("wraps");
        assert_eq!(
            dst,
            TileCoord::new(7, 2),
            "wrap column must come from the array"
        );
        // And the full simulation still completes round trips for the
        // pairs the kernel can route.
        let mut sim = NocSim::new(faults, SimConfig::default());
        let report = sim.run(pattern, 300, &mut rng);
        assert_eq!(report.responses_delivered, report.requests_injected);
        // Packets aimed at the faulty wrap column are undeliverable — the
        // honest outcome the old healthy-extent wrap hid.
        assert!(report.undeliverable > 0);
    }

    #[test]
    fn link_utilization_concentrates_at_the_hotspot() {
        let mut sim = clean_sim(8);
        let mut rng = seeded_rng(15);
        let target = TileCoord::new(4, 4);
        let report = sim.run(TrafficPattern::HotSpot { target }, 300, &mut rng);
        assert!(report.link_traversals > 0);
        let (_, tile, _, count) = sim.hottest_link().expect("links used");
        // The hottest link feeds the hot spot's immediate neighbourhood.
        assert!(tile.manhattan_distance(target) <= 2, "hottest at {tile}");
        assert!(count > 50);
        // Per-link counts sum to the total traversal counter.
        let mut sum = 0u64;
        for net in [NetworkKind::Xy, NetworkKind::Yx] {
            for t in TileArray::new(8, 8).tiles() {
                for d in wsp_topo::DIRECTIONS {
                    sum += sim.link_utilization(net, t, d);
                }
            }
        }
        assert_eq!(sum, report.link_traversals);
    }

    #[test]
    fn bursty_traffic_is_bit_identical_across_stepping_modes() {
        // Bursts separated by long idle gaps: the shape the event wheel
        // skips. Every counter, latency sum, and the histogram must match
        // the dense reference exactly.
        let run_mode = |stepping: Stepping| {
            let mut sim = clean_sim(8);
            sim.fabric_mut().set_stepping(stepping);
            sim.fabric_mut().set_sampling(32);
            sim.fabric_mut().set_digests(64);
            let mut rng = seeded_rng(11);
            let report = sim.run_bursts(TrafficPattern::Transpose, 5, 6, 400, &mut rng);
            let samples: Vec<(String, Vec<(u64, f64)>)> = sim
                .fabric()
                .timeseries()
                .map(|(name, s)| (name.to_string(), s.points().to_vec()))
                .collect();
            let journal = sim.fabric().journal().expect("digests on").to_text();
            (report, samples, journal)
        };
        let dense = run_mode(Stepping::Dense);
        assert_eq!(run_mode(Stepping::Sparse), dense);
        assert_eq!(run_mode(Stepping::Wheel), dense);
    }

    #[test]
    fn wheel_crosses_idle_gaps_in_constant_ticks() {
        // A single long gap must cost O(in-flight drain), not O(gap):
        // the executed-tick counter stays flat while the cycle counter
        // jumps the whole window.
        let mut sim = clean_sim(8);
        sim.fabric_mut().set_stepping(Stepping::Wheel);
        let mut rng = seeded_rng(12);
        let report = sim.run_bursts(TrafficPattern::Transpose, 2, 4, 100_000, &mut rng);
        assert!(report.cycles >= 200_000, "cycles {}", report.cycles);
        let ticks = sim.fabric().ticks_executed();
        assert!(
            ticks < 500,
            "wheel executed {ticks} ticks over {} cycles",
            report.cycles
        );
        assert_eq!(report.responses_delivered, report.requests_injected);
    }

    #[test]
    fn zero_injection_run_terminates_in_o_events() {
        // The empty-wafer edge case: nothing ever injects, so a wheel
        // run must execute zero ticks yet report the same cycle count
        // (and the same all-zero stats) as the dense sweep.
        let run_mode = |stepping: Stepping| {
            let mut sim = clean_sim(16);
            sim.config.injection_rate = 0.0;
            sim.fabric_mut().set_stepping(stepping);
            let mut rng = seeded_rng(13);
            let report = sim.run(TrafficPattern::UniformRandom, 50_000, &mut rng);
            (report, sim.fabric().ticks_executed())
        };
        let (dense_report, dense_ticks) = run_mode(Stepping::Dense);
        let (wheel_report, wheel_ticks) = run_mode(Stepping::Wheel);
        assert_eq!(dense_report, wheel_report);
        assert_eq!(dense_ticks, 50_000);
        assert_eq!(wheel_ticks, 0, "empty wafer must be one jump");
        assert_eq!(wheel_report.cycles, 50_000);
        assert_eq!(wheel_report.requests_injected, 0);
    }

    #[test]
    fn rtt_percentiles_are_ordered_and_bounded() {
        let mut sim = clean_sim(8);
        let mut rng = seeded_rng(9);
        let report = sim.run(TrafficPattern::UniformRandom, 400, &mut rng);
        let p50 = report.rtt_percentile(0.5);
        let p99 = report.rtt_percentile(0.99);
        assert!(p50 > 0);
        assert!(p50 <= p99);
        assert!(p99 <= report.max_round_trip_latency);
        let mean = report.mean_round_trip_latency();
        assert!((p50 as f64) < mean * 2.0);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn bad_percentile_rejected() {
        let _ = SimReport::default().rtt_percentile(1.5);
    }

    #[test]
    fn report_display_and_derived_stats() {
        let mut sim = clean_sim(4);
        let mut rng = seeded_rng(8);
        let report = sim.run(TrafficPattern::UniformRandom, 200, &mut rng);
        let s = report.to_string();
        assert!(s.contains("req in"));
        assert!(report.throughput() > 0.0);
        let empty = SimReport::default();
        assert_eq!(empty.mean_request_latency(), 0.0);
        assert_eq!(empty.mean_round_trip_latency(), 0.0);
        assert_eq!(empty.throughput(), 0.0);
    }
}
