//! The fault-tolerant waferscale mesh network (Sec. VI, Figs. 6 and 7).
//!
//! The 32×32 tile array is connected by *two independent* dimension-ordered
//! mesh networks: one routing X-then-Y, the other Y-then-X. Requests travel
//! on one network and their responses return on the complementary one, so
//! the pair uses the same physical path in both directions — two-way
//! communication works whenever a single healthy path exists, and
//! request/response cycles cannot deadlock. With a handful of faulty
//! chiplets a single DoR network disconnects >12 % of tile pairs; the dual
//! network cuts that to <2 % (Fig. 6), with the residue concentrated on
//! same-row/same-column pairs that have only one path.
//!
//! Crate layout:
//!
//! * [`routing`] — DoR path computation and health checks;
//! * [`connectivity`] — the Monte-Carlo disconnection analysis behind
//!   Fig. 6, using O(1) per-pair prefix-sum path checks;
//! * [`kernel`] — the kernel-software policy: per-pair network selection,
//!   load balancing across the two networks, and relaying through an
//!   intermediate tile when both direct paths are broken;
//! * [`fabric`] — the reusable cycle-level engine: per-tile router FIFOs,
//!   round-robin link arbitration with backpressure, relay re-injection,
//!   and per-link contention statistics. Both the synthetic-traffic
//!   simulator and the ISA-level machine in `waferscale` run on it;
//! * [`traffic`] — synthetic [`TrafficPattern`] generation and the
//!   [`NocSim`] latency/throughput studies on top of the fabric, also
//!   validating deadlock freedom.
//!
//! # Examples
//!
//! ```
//! use wsp_noc::connectivity::{disconnected_fraction, RoutingScheme};
//! use wsp_topo::{FaultMap, TileArray};
//!
//! let array = TileArray::new(32, 32);
//! let mut rng = wsp_common::seeded_rng(7);
//! let faults = FaultMap::sample_uniform(array, 5, &mut rng);
//! let single = disconnected_fraction(&faults, RoutingScheme::SingleXy);
//! let dual = disconnected_fraction(&faults, RoutingScheme::DualXyYx);
//! assert!(dual <= single);
//! ```

pub mod arena;
pub mod connectivity;
pub mod fabric;
pub mod fifo;
pub mod kernel;
pub mod oddeven;
pub mod routing;
pub mod traffic;

pub use arena::PacketArena;
pub use connectivity::{
    disconnected_fraction, healthy_region_connected, sample_connected_fault_map, ConnectivityPoint,
    ConnectivitySweep, RoutingScheme, SampleConnectedError,
};
pub use fabric::{Fabric, FabricPacket, LinkStats, PacketKind};
pub use fifo::{AsyncFifo, PacketRing};
pub use kernel::{NetworkChoice, RoutePlanner, RoutingTable};
pub use oddeven::{
    odd_even_disconnected_fraction, odd_even_reachable, route_odd_even, turn_allowed,
};
pub use routing::{dor_path, path_is_healthy, NetworkKind};
pub use traffic::{NocSim, SimConfig, SimReport, TrafficPattern};
