//! Monte-Carlo connectivity analysis of the dual-DoR scheme (Fig. 6).
//!
//! For a given fault map, a source-destination pair is *disconnected* when
//! no usable network offers a fully healthy DoR path between them. Because
//! a DoR path is one row segment plus one column segment, path health can
//! be answered in O(1) per pair from per-row/per-column fault prefix sums,
//! which is what lets the sweep evaluate all ~10⁶ ordered pairs of a 32×32
//! wafer for hundreds of random fault maps in milliseconds.

use rand::Rng;
use serde::{Deserialize, Serialize};
use wsp_common::rng::stream_seed;
use wsp_topo::{FaultMap, TileArray, TileCoord};

/// The routing schemes compared in Fig. 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RoutingScheme {
    /// A single X-Y dimension-ordered network (the conventional baseline).
    SingleXy,
    /// The paper's two independent networks: a pair is connected if either
    /// the X-Y or the Y-X path is healthy.
    DualXyYx,
}

impl std::fmt::Display for RoutingScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RoutingScheme::SingleXy => f.write_str("single DoR network"),
            RoutingScheme::DualXyYx => f.write_str("two DoR networks"),
        }
    }
}

/// Prefix-sum oracle answering "is this row/column segment fault-free?"
/// in O(1).
#[derive(Debug, Clone)]
pub(crate) struct SegmentOracle {
    array: TileArray,
    /// `row_prefix[y][x]` = number of faulty tiles in row `y` at columns `< x`.
    row_prefix: Vec<Vec<u32>>,
    /// `col_prefix[x][y]` = number of faulty tiles in column `x` at rows `< y`.
    col_prefix: Vec<Vec<u32>>,
}

impl SegmentOracle {
    pub(crate) fn new(faults: &FaultMap) -> Self {
        let array = faults.array();
        let cols = usize::from(array.cols());
        let rows = usize::from(array.rows());
        let mut row_prefix = vec![vec![0u32; cols + 1]; rows];
        let mut col_prefix = vec![vec![0u32; rows + 1]; cols];
        for y in 0..rows {
            for x in 0..cols {
                let faulty = faults.is_faulty(TileCoord::new(x as u16, y as u16)) as u32;
                row_prefix[y][x + 1] = row_prefix[y][x] + faulty;
                col_prefix[x][y + 1] = col_prefix[x][y] + faulty;
            }
        }
        SegmentOracle {
            array,
            row_prefix,
            col_prefix,
        }
    }

    /// No faults in row `y`, columns `x0..=x1` (order-insensitive)?
    #[inline]
    pub(crate) fn row_clear(&self, y: u16, x0: u16, x1: u16) -> bool {
        let (lo, hi) = if x0 <= x1 { (x0, x1) } else { (x1, x0) };
        let row = &self.row_prefix[usize::from(y)];
        row[usize::from(hi) + 1] - row[usize::from(lo)] == 0
    }

    /// No faults in column `x`, rows `y0..=y1` (order-insensitive)?
    #[inline]
    pub(crate) fn col_clear(&self, x: u16, y0: u16, y1: u16) -> bool {
        let (lo, hi) = if y0 <= y1 { (y0, y1) } else { (y1, y0) };
        let col = &self.col_prefix[usize::from(x)];
        col[usize::from(hi) + 1] - col[usize::from(lo)] == 0
    }

    /// XY-path health: row segment in the source row, then column segment
    /// in the destination column (endpoints included).
    #[inline]
    pub(crate) fn xy_connected(&self, s: TileCoord, d: TileCoord) -> bool {
        self.row_clear(s.y, s.x, d.x) && self.col_clear(d.x, s.y, d.y)
    }

    /// YX-path health: column segment in the source column, then row
    /// segment in the destination row.
    #[inline]
    pub(crate) fn yx_connected(&self, s: TileCoord, d: TileCoord) -> bool {
        self.col_clear(s.x, s.y, d.y) && self.row_clear(d.y, s.x, d.x)
    }

    pub(crate) fn array(&self) -> TileArray {
        self.array
    }
}

/// Fraction of healthy-tile pairs that cannot complete a request/response
/// round trip under the given scheme.
///
/// The semantics follow Sec. VI: with a **single** X-Y network, the
/// request rides XY(src→dst) and the response XY(dst→src) — two distinct
/// physical L-paths that must *both* be healthy. With the paper's **two**
/// networks, the response returns on the complementary network along the
/// same tiles as the request, so the pair communicates whenever *either*
/// of its two L-paths survives. Pairs where an endpoint is itself faulty
/// are excluded: the paper measures connectivity among working chiplets.
///
/// # Examples
///
/// ```
/// use wsp_noc::connectivity::{disconnected_fraction, RoutingScheme};
/// use wsp_topo::{FaultMap, TileArray};
///
/// let clean = FaultMap::none(TileArray::new(16, 16));
/// assert_eq!(disconnected_fraction(&clean, RoutingScheme::SingleXy), 0.0);
/// ```
pub fn disconnected_fraction(faults: &FaultMap, scheme: RoutingScheme) -> f64 {
    let oracle = SegmentOracle::new(faults);
    let array = oracle.array();
    let healthy: Vec<TileCoord> = faults.healthy_tiles().collect();
    if healthy.len() < 2 {
        return 0.0;
    }
    let mut disconnected = 0u64;
    let mut total = 0u64;
    for (i, &s) in healthy.iter().enumerate() {
        for &d in &healthy[i + 1..] {
            total += 1;
            let connected = match scheme {
                // Round trip on one network: both directed L-paths needed.
                RoutingScheme::SingleXy => oracle.xy_connected(s, d) && oracle.xy_connected(d, s),
                // Complementary response routing: one healthy L suffices.
                RoutingScheme::DualXyYx => oracle.xy_connected(s, d) || oracle.yx_connected(s, d),
            };
            if !connected {
                disconnected += 1;
            }
        }
    }
    let _ = array;
    disconnected as f64 / total as f64
}

/// One point of the Fig. 6 sweep: average disconnection at a fault count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConnectivityPoint {
    /// Number of faulty chiplets injected.
    pub faulty_chiplets: usize,
    /// Mean disconnected-pair fraction with a single X-Y network.
    pub single_network: f64,
    /// Mean disconnected-pair fraction with the dual X-Y / Y-X networks.
    pub dual_network: f64,
}

/// The Fig. 6 Monte-Carlo sweep over random fault maps.
///
/// # Examples
///
/// ```
/// use wsp_noc::ConnectivitySweep;
/// use wsp_topo::TileArray;
///
/// let sweep = ConnectivitySweep::new(TileArray::new(16, 16), 8);
/// let mut rng = wsp_common::seeded_rng(3);
/// let points = sweep.run(&[0, 2, 4], &mut rng);
/// assert_eq!(points.len(), 3);
/// assert_eq!(points[0].single_network, 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConnectivitySweep {
    array: TileArray,
    trials: usize,
}

impl ConnectivitySweep {
    /// Creates a sweep over `array` averaging `trials` random fault maps
    /// per point.
    ///
    /// # Panics
    ///
    /// Panics if `trials` is zero.
    pub fn new(array: TileArray, trials: usize) -> Self {
        assert!(trials > 0, "at least one trial required");
        ConnectivitySweep { array, trials }
    }

    /// The paper's setting: the full 32×32 wafer.
    pub fn paper_sweep(trials: usize) -> Self {
        ConnectivitySweep::new(TileArray::new(32, 32), trials)
    }

    /// Number of Monte-Carlo trials per fault count.
    #[inline]
    pub fn trials(&self) -> usize {
        self.trials
    }

    /// Runs the sweep for each fault count, averaging both schemes over
    /// the same fault maps (paired comparison, as in the paper).
    pub fn run<R: Rng + ?Sized>(
        &self,
        fault_counts: &[usize],
        rng: &mut R,
    ) -> Vec<ConnectivityPoint> {
        fault_counts
            .iter()
            .map(|&count| {
                let mut single = 0.0;
                let mut dual = 0.0;
                for _ in 0..self.trials {
                    let faults = FaultMap::sample_uniform(self.array, count, rng);
                    let oracle = SegmentOracle::new(&faults);
                    let (s, d) = both_fractions(&faults, &oracle);
                    single += s;
                    dual += d;
                }
                ConnectivityPoint {
                    faulty_chiplets: count,
                    single_network: single / self.trials as f64,
                    dual_network: dual / self.trials as f64,
                }
            })
            .collect()
    }

    /// Like [`ConnectivitySweep::run`] but deterministic per `(seed, point)`
    /// so points can be computed independently (e.g. from parallel
    /// workers) and still reproduce the single-threaded sweep.
    pub fn run_point(&self, fault_count: usize, seed: u64) -> ConnectivityPoint {
        let mut single = 0.0;
        let mut dual = 0.0;
        for trial in 0..self.trials {
            let mut rng = wsp_common::seeded_rng(stream_seed(
                seed,
                (fault_count as u64) << 32 | trial as u64,
            ));
            let faults = FaultMap::sample_uniform(self.array, fault_count, &mut rng);
            let oracle = SegmentOracle::new(&faults);
            let (s, d) = both_fractions(&faults, &oracle);
            single += s;
            dual += d;
        }
        ConnectivityPoint {
            faulty_chiplets: fault_count,
            single_network: single / self.trials as f64,
            dual_network: dual / self.trials as f64,
        }
    }
}

/// Computes single- and dual-network disconnected fractions in one pass
/// (round-trip semantics, unordered pairs).
fn both_fractions(faults: &FaultMap, oracle: &SegmentOracle) -> (f64, f64) {
    let healthy: Vec<TileCoord> = faults.healthy_tiles().collect();
    if healthy.len() < 2 {
        return (0.0, 0.0);
    }
    let mut single = 0u64;
    let mut dual = 0u64;
    let mut total = 0u64;
    for (i, &s) in healthy.iter().enumerate() {
        for &d in &healthy[i + 1..] {
            total += 1;
            let forward = oracle.xy_connected(s, d);
            let backward = oracle.xy_connected(d, s);
            if !(forward && backward) {
                single += 1;
                // Dual scheme: either L works for the round trip (the
                // reverse XY path is physically the YX path of s→d).
                if !forward && !backward {
                    dual += 1;
                }
            }
        }
    }
    (single as f64 / total as f64, dual as f64 / total as f64)
}

/// Whether the healthy tiles of `faults` form one mesh-connected region
/// (and there is at least one of them).
///
/// This is the usability predicate of the kernel layer: store-and-forward
/// relaying can hop along any healthy-tile chain, so a workload routes
/// between every pair of owners exactly when this holds. The serving
/// layer uses the same predicate for slice admission.
pub fn healthy_region_connected(faults: &FaultMap) -> bool {
    let array = faults.array();
    let Some(start) = faults.healthy_tiles().next() else {
        return false;
    };
    let mut seen = vec![false; array.tile_count()];
    seen[array.index_of(start)] = true;
    let mut stack = vec![start];
    let mut reached = 1usize;
    while let Some(tile) = stack.pop() {
        for nb in array.neighbors(tile) {
            let idx = array.index_of(nb);
            if !seen[idx] && faults.is_healthy(nb) {
                seen[idx] = true;
                reached += 1;
                stack.push(nb);
            }
        }
    }
    reached == faults.healthy_count()
}

/// No connected fault map was found within the retry budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleConnectedError {
    /// The array sampled over.
    pub array: TileArray,
    /// Faulty tiles requested per map.
    pub fault_count: usize,
    /// Attempts made before giving up.
    pub budget: usize,
}

impl std::fmt::Display for SampleConnectedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "no connected fault map with {} faults on {}x{} within {} attempts",
            self.fault_count,
            self.array.cols(),
            self.array.rows(),
            self.budget
        )
    }
}

impl std::error::Error for SampleConnectedError {}

/// Samples a uniform fault map whose healthy region is connected
/// ([`healthy_region_connected`]), retrying with deterministic sub-seeds
/// up to `budget` attempts.
///
/// Attempt `i` draws from `stream_seed(seed, i)`, so every attempt's map
/// is a pure function of `(array, count, seed, i)`: a retry never
/// perturbs any other draw in the caller (the failure mode of threading
/// one shared RNG stream through a resample loop, where one unlucky map
/// shifted every later sample). Returns the map and the attempt index
/// that produced it (0 = first try).
///
/// # Errors
///
/// [`SampleConnectedError`] when all `budget` attempts produced maps with
/// a split (or empty) healthy region.
///
/// # Examples
///
/// ```
/// use wsp_noc::connectivity::sample_connected_fault_map;
/// use wsp_topo::TileArray;
///
/// let (map, attempt) =
///     sample_connected_fault_map(TileArray::new(8, 8), 4, 7, 32).expect("findable");
/// assert_eq!(map.fault_count(), 4);
/// assert!(attempt < 32);
/// ```
pub fn sample_connected_fault_map(
    array: TileArray,
    count: usize,
    seed: u64,
    budget: usize,
) -> Result<(FaultMap, usize), SampleConnectedError> {
    for attempt in 0..budget {
        let mut rng = wsp_common::seeded_rng(stream_seed(seed, attempt as u64));
        let map = FaultMap::sample_uniform(array, count, &mut rng);
        if healthy_region_connected(&map) {
            return Ok((map, attempt));
        }
    }
    Err(SampleConnectedError {
        array,
        fault_count: count,
        budget,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::{path_is_healthy, NetworkKind};
    use wsp_common::seeded_rng;

    #[test]
    fn clean_wafer_is_fully_connected() {
        let clean = FaultMap::none(TileArray::new(16, 16));
        assert_eq!(disconnected_fraction(&clean, RoutingScheme::SingleXy), 0.0);
        assert_eq!(disconnected_fraction(&clean, RoutingScheme::DualXyYx), 0.0);
    }

    #[test]
    fn oracle_matches_explicit_path_walk() {
        // The O(1) oracle must agree with walking the actual DoR path.
        let array = TileArray::new(12, 12);
        let mut rng = seeded_rng(31);
        for _ in 0..20 {
            let faults = FaultMap::sample_uniform(array, 10, &mut rng);
            let oracle = SegmentOracle::new(&faults);
            for s in array.tiles() {
                for d in [
                    TileCoord::new(0, 0),
                    TileCoord::new(11, 11),
                    TileCoord::new(5, 7),
                    TileCoord::new(s.y % 12, s.x % 12),
                ] {
                    assert_eq!(
                        oracle.xy_connected(s, d),
                        path_is_healthy(&faults, s, d, NetworkKind::Xy),
                        "XY mismatch {s}→{d}"
                    );
                    assert_eq!(
                        oracle.yx_connected(s, d),
                        path_is_healthy(&faults, s, d, NetworkKind::Yx),
                        "YX mismatch {s}→{d}"
                    );
                }
            }
        }
    }

    #[test]
    fn healthy_region_connectivity_predicate() {
        let array = TileArray::new(4, 4);
        // Clean: connected. Fully faulty: not (no healthy tile at all).
        assert!(healthy_region_connected(&FaultMap::none(array)));
        assert!(!healthy_region_connected(&FaultMap::from_faulty(
            array,
            array.tiles()
        )));
        // A faulty middle column splits the region.
        let wall: Vec<TileCoord> = (0..4).map(|y| TileCoord::new(1, y)).collect();
        assert!(!healthy_region_connected(&FaultMap::from_faulty(
            array,
            wall.clone()
        )));
        // ...unless one side of the wall is entirely faulty too.
        let mut one_side = wall;
        one_side.extend((0..4).map(|y| TileCoord::new(0, y)));
        assert!(healthy_region_connected(&FaultMap::from_faulty(
            array, one_side
        )));
    }

    #[test]
    fn connected_sampling_retries_with_deterministic_sub_seeds() {
        // Regression pin for the resample-loop fix: on a 4×4 array with 6
        // faults, seed 2's first draw has a split healthy region, and the
        // bounded deterministic retry finds a connected map on attempt 1.
        let array = TileArray::new(4, 4);
        let first_draw = FaultMap::sample_uniform(
            array,
            6,
            &mut seeded_rng(wsp_common::rng::stream_seed(2, 0)),
        );
        assert!(
            !healthy_region_connected(&first_draw),
            "seed 2 attempt 0 was expected to need a retry:\n{first_draw}"
        );
        let (map, attempt) = sample_connected_fault_map(array, 6, 2, 32).expect("budget suffices");
        assert_eq!(attempt, 1);
        assert_eq!(map.fault_count(), 6);
        assert!(healthy_region_connected(&map));
        // Deterministic: the same call yields the same map and attempt,
        // and the successful attempt is reproducible directly from its
        // sub-seed without replaying the failed draws.
        assert_eq!(
            sample_connected_fault_map(array, 6, 2, 32),
            Ok((map.clone(), attempt))
        );
        let direct = FaultMap::sample_uniform(
            array,
            6,
            &mut seeded_rng(wsp_common::rng::stream_seed(2, attempt as u64)),
        );
        assert_eq!(direct, map);
    }

    #[test]
    fn connected_sampling_reports_exhausted_budget() {
        // 3 faults on a 2×2 mesh leave one healthy tile (connected), but 4
        // of 4 leave none — every attempt fails and the error is loud.
        let array = TileArray::new(2, 2);
        let err = sample_connected_fault_map(array, 4, 9, 5).expect_err("cannot connect");
        assert_eq!(err.budget, 5);
        assert_eq!(err.fault_count, 4);
        assert!(err.to_string().contains("within 5 attempts"));
        let (_, attempt) = sample_connected_fault_map(array, 3, 9, 5).expect("one tile is fine");
        assert_eq!(attempt, 0);
    }

    #[test]
    fn dual_never_worse_than_single() {
        let array = TileArray::new(16, 16);
        let mut rng = seeded_rng(8);
        for faults in (0..10).map(|_| FaultMap::sample_uniform(array, 6, &mut rng)) {
            let s = disconnected_fraction(&faults, RoutingScheme::SingleXy);
            let d = disconnected_fraction(&faults, RoutingScheme::DualXyYx);
            assert!(d <= s, "dual {d} worse than single {s}");
        }
    }

    #[test]
    fn fig6_shape_at_five_faults() {
        // Paper: with 5 faulty chiplets on the 32×32 wafer, a single DoR
        // network disconnects >12 % of pairs; two networks keep it <2 %.
        let sweep = ConnectivitySweep::paper_sweep(30);
        let mut rng = seeded_rng(42);
        let points = sweep.run(&[5], &mut rng);
        let p = points[0];
        assert!(
            p.single_network > 0.12,
            "single-network disconnection {:.3} too low (paper: >12%)",
            p.single_network
        );
        assert!(
            p.dual_network < 0.02,
            "dual-network disconnection {:.3} too high",
            p.dual_network
        );
        assert!(p.single_network / p.dual_network > 5.0);
    }

    #[test]
    fn disconnection_grows_with_fault_count() {
        let sweep = ConnectivitySweep::new(TileArray::new(32, 32), 10);
        let mut rng = seeded_rng(11);
        let points = sweep.run(&[1, 3, 5, 8], &mut rng);
        for w in points.windows(2) {
            assert!(w[1].single_network >= w[0].single_network);
            assert!(w[1].dual_network >= w[0].dual_network);
        }
    }

    #[test]
    fn residual_dual_disconnections_concentrate_on_colinear_pairs() {
        // Sec. VI: "The paths that still get disconnected with two DoR
        // networks mostly connect those pairs of chiplets that are in the
        // same row/column." Colinear pairs share a single physical path on
        // both networks, so their per-pair disconnection *rate* is far
        // higher; and with one fault they are the only residuals, because
        // the XY and YX paths of a non-colinear pair only intersect at the
        // endpoints.
        let array = TileArray::new(32, 32);
        let mut rng = seeded_rng(17);
        let mut colinear_dead = 0u64;
        let mut colinear_total = 0u64;
        let mut other_dead = 0u64;
        let mut other_total = 0u64;
        for _ in 0..10 {
            let faults = FaultMap::sample_uniform(array, 5, &mut rng);
            let oracle = SegmentOracle::new(&faults);
            let healthy: Vec<TileCoord> = faults.healthy_tiles().collect();
            for &s in &healthy {
                for &d in &healthy {
                    if s == d {
                        continue;
                    }
                    let dead = !oracle.xy_connected(s, d) && !oracle.yx_connected(s, d);
                    if s.is_colinear_with(d) {
                        colinear_total += 1;
                        colinear_dead += dead as u64;
                    } else {
                        other_total += 1;
                        other_dead += dead as u64;
                    }
                }
            }
        }
        let colinear_rate = colinear_dead as f64 / colinear_total as f64;
        let other_rate = other_dead as f64 / other_total as f64;
        assert!(
            colinear_rate > 3.0 * other_rate,
            "colinear rate {colinear_rate:.4} vs non-colinear rate {other_rate:.4}"
        );
    }

    #[test]
    fn single_fault_residuals_are_exclusively_colinear() {
        // With exactly one interior fault, a non-colinear pair always has
        // one healthy path (the two DoR paths only share the endpoints).
        let array = TileArray::new(16, 16);
        let mut rng = seeded_rng(29);
        for _ in 0..10 {
            let faults = FaultMap::sample_uniform(array, 1, &mut rng);
            let oracle = SegmentOracle::new(&faults);
            let healthy: Vec<TileCoord> = faults.healthy_tiles().collect();
            for &s in &healthy {
                for &d in &healthy {
                    if s == d {
                        continue;
                    }
                    if !oracle.xy_connected(s, d) && !oracle.yx_connected(s, d) {
                        assert!(
                            s.is_colinear_with(d),
                            "non-colinear pair {s}→{d} disconnected by one fault"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn run_point_is_deterministic() {
        let sweep = ConnectivitySweep::new(TileArray::new(16, 16), 5);
        let a = sweep.run_point(4, 99);
        let b = sweep.run_point(4, 99);
        assert_eq!(a, b);
        assert_eq!(a.faulty_chiplets, 4);
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_rejected() {
        let _ = ConnectivitySweep::new(TileArray::new(8, 8), 0);
    }

    #[test]
    fn display_names_schemes() {
        assert_eq!(RoutingScheme::SingleXy.to_string(), "single DoR network");
        assert_eq!(RoutingScheme::DualXyYx.to_string(), "two DoR networks");
    }
}
