//! The struct-of-arrays packet arena behind the fabric hot loop.
//!
//! A [`FabricPacket`] is ~48 bytes; the original fabric stored whole
//! packets in `VecDeque`s, so every hop copied the full struct and every
//! queue was its own heap allocation. [`PacketArena`] instead keeps each
//! field in its own parallel column (`id`, `src`, `dst`, `choice`, packed
//! kind/leg metadata, `injected_at`, `hops`) and hands out `u32` slot
//! indices. Router FIFOs then queue 4-byte indices
//! ([`PacketRing`](crate::fifo::PacketRing)), a forward is one index copy
//! plus a column increment, and the per-field columns stay cache-linear
//! for the digest and telemetry walks that scan whole queues.
//!
//! Freed slots go on a free list and are recycled by later allocations,
//! so a steady-state traffic mix reaches a fixed arena footprint and
//! never touches the allocator again — the property the zero-allocation
//! regression test pins.
//!
//! Indices are `u32`, not the `u16` a 2048-chiplet wafer's *link* FIFOs
//! would strictly need: `Fabric::inject_unbounded` places no cap on
//! response traffic buffered at a tile, so a saturated hot-spot run can
//! legitimately hold >64 Ki packets in flight.

use wsp_topo::TileCoord;

use crate::fabric::{FabricPacket, PacketKind};
use crate::kernel::NetworkChoice;
use crate::routing::NetworkKind;

/// Bit 0 of `meta`: set for a response, clear for a request.
const META_RESPONSE: u8 = 1;
/// Bit 1 of `meta`: the relay leg (0 or 1).
const META_LEG: u8 = 2;

/// The per-hop hot fields of a packet, packed into one column element so
/// a FIFO head refresh (`target` + `net`) and the hop-count bump of a
/// forward touch a single cache line instead of three columns.
#[derive(Debug, Clone, Copy)]
struct HotRoute {
    /// The tile the packet is heading for on its *current* leg —
    /// `choice.leg_target(leg, dst)` materialised, so the per-hop head
    /// refresh is a column load instead of an enum match.
    target: TileCoord,
    /// The network carrying the current leg, materialised likewise.
    net: NetworkKind,
    /// Link traversals so far.
    hops: u32,
}

/// A free-listed struct-of-arrays store of in-flight packets.
///
/// # Examples
///
/// ```
/// use wsp_noc::{FabricPacket, NetworkChoice, NetworkKind, PacketArena};
/// use wsp_topo::TileCoord;
///
/// let mut arena = PacketArena::default();
/// let packet = FabricPacket::request(
///     7,
///     TileCoord::new(0, 0),
///     TileCoord::new(3, 1),
///     NetworkChoice::Direct(NetworkKind::Xy),
///     0,
/// );
/// let slot = arena.alloc(&packet);
/// arena.bump_hops(slot);
/// assert_eq!(arena.id(slot), 7);
/// assert_eq!(arena.hops(slot), 1);
/// let out = arena.take(slot);
/// assert_eq!(out.hops, 1);
/// assert_eq!(arena.live(), 0);
/// ```
#[derive(Debug, Default, Clone)]
pub struct PacketArena {
    id: Vec<u64>,
    src: Vec<TileCoord>,
    dst: Vec<TileCoord>,
    choice: Vec<NetworkChoice>,
    /// Packed kind/leg bits; see [`META_RESPONSE`] and [`META_LEG`].
    meta: Vec<u8>,
    injected_at: Vec<u64>,
    /// Per-hop hot fields (current-leg target/network, hop count); see
    /// [`HotRoute`].
    route: Vec<HotRoute>,
    /// Slot indices available for reuse.
    free: Vec<u32>,
}

impl PacketArena {
    /// An arena with column capacity for `capacity` packets pre-reserved.
    pub fn with_capacity(capacity: usize) -> Self {
        PacketArena {
            id: Vec::with_capacity(capacity),
            src: Vec::with_capacity(capacity),
            dst: Vec::with_capacity(capacity),
            choice: Vec::with_capacity(capacity),
            meta: Vec::with_capacity(capacity),
            injected_at: Vec::with_capacity(capacity),
            route: Vec::with_capacity(capacity),
            free: Vec::with_capacity(capacity),
        }
    }

    /// Stores `packet`, returning its slot index. Recycles a freed slot
    /// when one is available; otherwise the columns grow by one.
    #[inline]
    pub fn alloc(&mut self, packet: &FabricPacket) -> u32 {
        let response = matches!(packet.kind, PacketKind::Response);
        let meta = ((response as u8) * META_RESPONSE) | ((packet.leg & 1) * META_LEG);
        let route = HotRoute {
            target: packet.choice.leg_target(packet.leg, packet.dst),
            net: packet.choice.leg_network(response, packet.leg),
            hops: packet.hops,
        };
        match self.free.pop() {
            Some(slot) => {
                let i = slot as usize;
                self.id[i] = packet.id;
                self.src[i] = packet.src;
                self.dst[i] = packet.dst;
                self.choice[i] = packet.choice;
                self.meta[i] = meta;
                self.injected_at[i] = packet.injected_at;
                self.route[i] = route;
                slot
            }
            None => {
                let slot = u32::try_from(self.id.len()).expect("arena slots fit in u32");
                self.id.push(packet.id);
                self.src.push(packet.src);
                self.dst.push(packet.dst);
                self.choice.push(packet.choice);
                self.meta.push(meta);
                self.injected_at.push(packet.injected_at);
                self.route.push(route);
                slot
            }
        }
    }

    /// Reconstructs the packet in `slot` without freeing it.
    #[inline]
    pub fn get(&self, slot: u32) -> FabricPacket {
        let i = slot as usize;
        FabricPacket {
            id: self.id[i],
            src: self.src[i],
            dst: self.dst[i],
            choice: self.choice[i],
            kind: if self.meta[i] & META_RESPONSE != 0 {
                PacketKind::Response
            } else {
                PacketKind::Request
            },
            leg: (self.meta[i] & META_LEG) >> 1,
            injected_at: self.injected_at[i],
            hops: self.route[i].hops,
        }
    }

    /// Reconstructs the packet in `slot` and returns the slot to the
    /// free list for reuse.
    #[inline]
    pub fn take(&mut self, slot: u32) -> FabricPacket {
        let packet = self.get(slot);
        self.free.push(slot);
        packet
    }

    /// Caller-assigned packet id of `slot`.
    #[inline]
    pub fn id(&self, slot: u32) -> u64 {
        self.id[slot as usize]
    }

    /// Relay leg (0 or 1) of `slot`.
    #[inline]
    pub fn leg(&self, slot: u32) -> u8 {
        (self.meta[slot as usize] & META_LEG) >> 1
    }

    /// Link traversals of `slot` so far.
    #[inline]
    pub fn hops(&self, slot: u32) -> u32 {
        self.route[slot as usize].hops
    }

    /// Routing decision of `slot`.
    #[inline]
    pub fn choice(&self, slot: u32) -> NetworkChoice {
        self.choice[slot as usize]
    }

    /// Records one link traversal for `slot`.
    #[inline]
    pub fn bump_hops(&mut self, slot: u32) {
        self.route[slot as usize].hops += 1;
    }

    /// Moves `slot` onto relay leg `leg` (its route stays fixed),
    /// refreshing the materialised current-leg target and network.
    #[inline]
    pub fn set_leg(&mut self, slot: u32, leg: u8) {
        let i = slot as usize;
        let meta = &mut self.meta[i];
        *meta = (*meta & !META_LEG) | ((leg & 1) * META_LEG);
        let response = *meta & META_RESPONSE != 0;
        self.route[i].target = self.choice[i].leg_target(leg & 1, self.dst[i]);
        self.route[i].net = self.choice[i].leg_network(response, leg & 1);
    }

    /// The tile `slot` is currently heading for on its present leg.
    #[inline]
    pub fn leg_target(&self, slot: u32) -> TileCoord {
        self.route[slot as usize].target
    }

    /// The network carrying `slot`'s present leg.
    #[inline]
    pub fn network_of(&self, slot: u32) -> NetworkKind {
        self.route[slot as usize].net
    }

    /// Packets currently stored (allocated slots minus freed ones).
    pub fn live(&self) -> usize {
        self.id.len() - self.free.len()
    }

    /// Total slots ever allocated — the arena's high-water footprint.
    pub fn slots(&self) -> usize {
        self.id.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn packet(id: u64) -> FabricPacket {
        FabricPacket::request(
            id,
            TileCoord::new(1, 2),
            TileCoord::new(5, 6),
            NetworkChoice::Direct(NetworkKind::Yx),
            42,
        )
    }

    #[test]
    fn round_trips_every_field() {
        let mut arena = PacketArena::default();
        let relay = FabricPacket::request(
            9,
            TileCoord::new(0, 0),
            TileCoord::new(7, 7),
            NetworkChoice::Relay {
                via: TileCoord::new(3, 3),
                first: NetworkKind::Xy,
                second: NetworkKind::Yx,
            },
            11,
        );
        let slot = arena.alloc(&relay);
        let got = arena.get(slot);
        assert_eq!(got.id, 9);
        assert_eq!(got.src, TileCoord::new(0, 0));
        assert_eq!(got.dst, TileCoord::new(7, 7));
        assert_eq!(got.choice, relay.choice);
        assert_eq!(got.kind, PacketKind::Request);
        assert_eq!(got.injected_at, 11);
        assert_eq!(got.hops, 0);
        // Leg 0 of a relay heads for the via tile on its first network.
        assert_eq!(arena.leg_target(slot), TileCoord::new(3, 3));
        assert_eq!(arena.network_of(slot), NetworkKind::Xy);
        arena.set_leg(slot, 1);
        assert_eq!(arena.leg(slot), 1);
        assert_eq!(arena.leg_target(slot), TileCoord::new(7, 7));
        assert_eq!(arena.network_of(slot), NetworkKind::Yx);
    }

    #[test]
    fn freed_slots_are_recycled_before_growth() {
        let mut arena = PacketArena::default();
        let a = arena.alloc(&packet(0));
        let b = arena.alloc(&packet(1));
        assert_eq!(arena.live(), 2);
        assert_eq!(arena.take(a).id, 0);
        assert_eq!(arena.live(), 1);
        let c = arena.alloc(&packet(2));
        assert_eq!(c, a, "freed slot reused");
        assert_eq!(arena.slots(), 2, "no growth while a slot is free");
        assert_eq!(arena.id(b), 1);
        assert_eq!(arena.id(c), 2);
    }

    #[test]
    fn steady_churn_reaches_a_fixed_footprint() {
        let mut arena = PacketArena::with_capacity(8);
        let mut slots = Vec::new();
        for round in 0..100u64 {
            for k in 0..8 {
                slots.push(arena.alloc(&packet(round * 8 + k)));
            }
            for slot in slots.drain(..) {
                arena.take(slot);
            }
        }
        assert_eq!(arena.live(), 0);
        assert_eq!(arena.slots(), 8, "footprint pinned at the peak in-flight");
    }

    #[test]
    fn responses_keep_their_kind_through_the_arena() {
        let mut arena = PacketArena::default();
        let req = packet(3);
        let resp = FabricPacket::response(&req);
        let slot = arena.alloc(&resp);
        let got = arena.get(slot);
        assert_eq!(got.kind, PacketKind::Response);
        assert_eq!(got.src, req.dst);
        assert_eq!(got.dst, req.src);
        // A direct response rides the complementary network.
        assert_eq!(arena.network_of(slot), NetworkKind::Xy);
    }
}
