//! Odd-even turn-model adaptive routing — the paper's named future-work
//! upgrade (Sec. VI: "In the future, we will incorporate sophisticated
//! routing schemes [18, 19] for improved waferscale fault tolerance").
//!
//! Paper reference 18 is Wu's fault-tolerant, deadlock-free routing for 2-D
//! meshes built on the odd-even turn model (after Chiu): instead of fixing
//! the dimension order, routing stays *adaptive* but prohibits two turn
//! types per column parity, which provably breaks all cycles:
//!
//! * **Rule 1** — no east→north (EN) and no east→south (ES) turns at
//!   tiles in *even* columns;
//! * **Rule 2** — no north→west (NW) and no south→west (SW) turns at
//!   tiles in *odd* columns.
//!
//! Any path whose every turn obeys the rules is deadlock-free, so a
//! fault-tolerant router may search among *all* rule-abiding paths —
//! including non-minimal ones — and reconnects many of the pairs the
//! dual-DoR scheme loses.

use std::collections::VecDeque;

use wsp_topo::{Direction, FaultMap, TileCoord, DIRECTIONS};

/// Whether a turn from travelling `from` to travelling `to` is permitted
/// at tile `at` under the odd-even rules.
///
/// Straight-through and U-turn-free movement is always allowed (U-turns
/// are categorically forbidden in turn models).
///
/// # Examples
///
/// ```
/// use wsp_noc::oddeven::turn_allowed;
/// use wsp_topo::{Direction, TileCoord};
///
/// // EN turn at an even column: forbidden.
/// assert!(!turn_allowed(TileCoord::new(2, 5), Direction::East, Direction::North));
/// // Same turn at an odd column: fine.
/// assert!(turn_allowed(TileCoord::new(3, 5), Direction::East, Direction::North));
/// ```
pub fn turn_allowed(at: TileCoord, from: Direction, to: Direction) -> bool {
    use Direction::*;
    if to == from.opposite() {
        return false; // no U-turns
    }
    if to == from {
        return true; // straight through
    }
    let even_column = at.x.is_multiple_of(2);
    match (from, to) {
        // Rule 1: EN and ES forbidden in even columns.
        (East, North) | (East, South) => !even_column,
        // Rule 2: NW and SW forbidden in odd columns.
        (North, West) | (South, West) => even_column,
        // All other turns (WN, WS, NE, SE) are always allowed.
        _ => true,
    }
}

/// Finds a deadlock-free path from `from` to `to` over healthy tiles,
/// obeying the odd-even turn rules, allowing non-minimal detours up to
/// `max_hops` total hops. Returns the tile sequence (endpoints included),
/// or `None` when no rule-abiding path exists within the bound.
///
/// The search is a BFS over `(tile, incoming direction)` states, so the
/// returned path is hop-minimal *among rule-abiding paths*.
///
/// # Panics
///
/// Panics if either endpoint lies outside the fault map's array.
pub fn route_odd_even(
    faults: &FaultMap,
    from: TileCoord,
    to: TileCoord,
    max_hops: u32,
) -> Option<Vec<TileCoord>> {
    if faults.is_faulty(from) || faults.is_faulty(to) {
        return None;
    }
    if from == to {
        return Some(vec![from]);
    }
    let array = faults.array();
    // State: (tile index, incoming direction index). Direction 4 is the
    // virtual "injected here" state with no incoming direction.
    let states = array.tile_count() * 5;
    let mut prev: Vec<Option<(usize, usize)>> = vec![None; states];
    let mut dist: Vec<u32> = vec![u32::MAX; states];
    let start = array.index_of(from) * 5 + 4;
    dist[start] = 0;
    let mut queue = VecDeque::from([start]);

    while let Some(state) = queue.pop_front() {
        let tile_idx = state / 5;
        let in_dir = state % 5;
        let tile = array.coord_of(tile_idx);
        let hops = dist[state];
        if hops >= max_hops {
            continue;
        }
        for out in DIRECTIONS {
            // Injection can leave in any direction; in-flight packets
            // must obey the turn rules.
            if in_dir < 4 && !turn_allowed(tile, DIRECTIONS[in_dir], out) {
                continue;
            }
            let Some(nb) = array.neighbor(tile, out) else {
                continue;
            };
            if faults.is_faulty(nb) {
                continue;
            }
            let nb_state = array.index_of(nb) * 5 + out.index();
            if dist[nb_state] != u32::MAX {
                continue;
            }
            dist[nb_state] = hops + 1;
            prev[nb_state] = Some((state, out.index()));
            if nb == to {
                // Reconstruct.
                let mut path = vec![nb];
                let mut cur = nb_state;
                while let Some((p, _)) = prev[cur] {
                    path.push(array.coord_of(p / 5));
                    cur = p;
                }
                path.reverse();
                return Some(path);
            }
            queue.push_back(nb_state);
        }
    }
    None
}

/// All healthy tiles reachable from `from` under the odd-even rules
/// within `max_hops`, as a row-major boolean mask (the source itself is
/// always marked).
///
/// One bounded BFS over the same `(tile, incoming-direction)` state
/// space [`route_odd_even`] searches — but with no early exit, so a
/// single pass answers reachability for *every* destination at once. A
/// destination counts as reached when any of its four incoming-direction
/// states is reached within the hop budget, exactly the condition under
/// which the per-pair search would have returned a path.
pub fn odd_even_reachable(faults: &FaultMap, from: TileCoord, max_hops: u32) -> Vec<bool> {
    let array = faults.array();
    let mut reached = vec![false; array.tile_count()];
    if faults.is_faulty(from) {
        return reached;
    }
    reached[array.index_of(from)] = true;
    let states = array.tile_count() * 5;
    let mut dist: Vec<u32> = vec![u32::MAX; states];
    let start = array.index_of(from) * 5 + 4;
    dist[start] = 0;
    let mut queue = VecDeque::from([start]);
    while let Some(state) = queue.pop_front() {
        let tile_idx = state / 5;
        let in_dir = state % 5;
        let tile = array.coord_of(tile_idx);
        let hops = dist[state];
        if hops >= max_hops {
            continue;
        }
        for out in DIRECTIONS {
            if in_dir < 4 && !turn_allowed(tile, DIRECTIONS[in_dir], out) {
                continue;
            }
            let Some(nb) = array.neighbor(tile, out) else {
                continue;
            };
            if faults.is_faulty(nb) {
                continue;
            }
            let nb_idx = array.index_of(nb);
            let nb_state = nb_idx * 5 + out.index();
            if dist[nb_state] != u32::MAX {
                continue;
            }
            dist[nb_state] = hops + 1;
            reached[nb_idx] = true;
            queue.push_back(nb_state);
        }
    }
    reached
}

/// Fraction of healthy-tile ordered pairs with no rule-abiding path under
/// the odd-even adaptive router (the fault-tolerance upgrade's residual
/// disconnection, comparable to [`crate::connectivity`]'s dual-DoR
/// numbers).
///
/// One multi-destination search per source ([`odd_even_reachable`]), so
/// the cost is `O(H · states)` for `H` healthy tiles instead of the
/// `O(H² · states)` the former per-pair [`route_odd_even`] sweep paid —
/// on the 16×16 arrays `fig6_disconnect` resamples per trial that is a
/// ~200× reduction in BFS work for bit-identical fractions.
pub fn odd_even_disconnected_fraction(faults: &FaultMap, max_hops: u32) -> f64 {
    let array = faults.array();
    let healthy: Vec<TileCoord> = faults.healthy_tiles().collect();
    if healthy.len() < 2 {
        return 0.0;
    }
    let mut disconnected = 0u64;
    let total = (healthy.len() as u64) * (healthy.len() as u64 - 1);
    for &s in &healthy {
        let reached = odd_even_reachable(faults, s, max_hops);
        for &d in &healthy {
            if s != d && !reached[array.index_of(d)] {
                disconnected += 1;
            }
        }
    }
    disconnected as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsp_common::seeded_rng;
    use wsp_topo::TileArray;

    #[test]
    fn turn_rules_match_the_model() {
        use Direction::*;
        let even = TileCoord::new(4, 3);
        let odd = TileCoord::new(5, 3);
        // Rule 1.
        assert!(!turn_allowed(even, East, North));
        assert!(!turn_allowed(even, East, South));
        assert!(turn_allowed(odd, East, North));
        assert!(turn_allowed(odd, East, South));
        // Rule 2.
        assert!(!turn_allowed(odd, North, West));
        assert!(!turn_allowed(odd, South, West));
        assert!(turn_allowed(even, North, West));
        assert!(turn_allowed(even, South, West));
        // Always-legal turns.
        for at in [even, odd] {
            assert!(turn_allowed(at, West, North));
            assert!(turn_allowed(at, West, South));
            assert!(turn_allowed(at, North, East));
            assert!(turn_allowed(at, South, East));
        }
        // No U-turns, straight always fine.
        assert!(!turn_allowed(even, East, West));
        assert!(turn_allowed(even, East, East));
    }

    #[test]
    fn routes_on_clean_mesh_are_minimal() {
        let array = TileArray::new(8, 8);
        let faults = FaultMap::none(array);
        let mut rng = seeded_rng(1);
        use rand::RngExt;
        for _ in 0..50 {
            let s = TileCoord::new(rng.random_range(0..8), rng.random_range(0..8));
            let d = TileCoord::new(rng.random_range(0..8), rng.random_range(0..8));
            let path = route_odd_even(&faults, s, d, 64).expect("clean mesh connects");
            assert_eq!(path.len() as u32, s.manhattan_distance(d) + 1, "{s}->{d}");
        }
    }

    #[test]
    fn paths_obey_turn_rules_everywhere() {
        let array = TileArray::new(10, 10);
        let mut rng = seeded_rng(2);
        for _ in 0..20 {
            let faults = FaultMap::sample_uniform(array, 12, &mut rng);
            for s in faults.healthy_tiles().step_by(7) {
                for d in faults.healthy_tiles().step_by(11) {
                    if s == d {
                        continue;
                    }
                    let Some(path) = route_odd_even(&faults, s, d, 60) else {
                        continue;
                    };
                    // Health + legality of every hop and turn.
                    for w in path.windows(2) {
                        assert!(faults.is_healthy(w[1]));
                        assert_eq!(w[0].manhattan_distance(w[1]), 1);
                    }
                    for w in path.windows(3) {
                        let d1 = dir_between(w[0], w[1]);
                        let d2 = dir_between(w[1], w[2]);
                        assert!(
                            turn_allowed(w[1], d1, d2),
                            "illegal turn {d1}->{d2} at {} on {}->{}",
                            w[1],
                            s,
                            d
                        );
                    }
                }
            }
        }
    }

    fn dir_between(a: TileCoord, b: TileCoord) -> Direction {
        if b.x > a.x {
            Direction::East
        } else if b.x < a.x {
            Direction::West
        } else if b.y > a.y {
            Direction::South
        } else {
            Direction::North
        }
    }

    #[test]
    fn adaptivity_routes_around_blocked_rows() {
        // The colinear case the dual-DoR scheme loses: same row, fault in
        // between. Odd-even detours around it.
        let array = TileArray::new(8, 8);
        let faults = FaultMap::from_faulty(array, [TileCoord::new(4, 3)]);
        let s = TileCoord::new(0, 3);
        let d = TileCoord::new(7, 3);
        let path = route_odd_even(&faults, s, d, 32).expect("detour exists");
        assert!(path.iter().all(|&t| faults.is_healthy(t)));
        // Minimal detour is 2 extra hops.
        assert_eq!(path.len() as u32, s.manhattan_distance(d) + 2 + 1);
    }

    #[test]
    fn odd_even_beats_dual_dor_on_residual_disconnections() {
        use crate::connectivity::{disconnected_fraction, RoutingScheme};
        let array = TileArray::new(10, 10);
        let mut rng = seeded_rng(3);
        let mut oe_total = 0.0;
        let mut dual_total = 0.0;
        for _ in 0..5 {
            let faults = FaultMap::sample_uniform(array, 6, &mut rng);
            oe_total += odd_even_disconnected_fraction(&faults, 40);
            dual_total += disconnected_fraction(&faults, RoutingScheme::DualXyYx);
        }
        assert!(
            oe_total <= dual_total,
            "odd-even {oe_total} worse than dual DoR {dual_total}"
        );
    }

    /// The original per-pair implementation, kept as the test oracle for
    /// the multi-destination restructure.
    fn brute_force_disconnected_fraction(faults: &FaultMap, max_hops: u32) -> f64 {
        let healthy: Vec<TileCoord> = faults.healthy_tiles().collect();
        if healthy.len() < 2 {
            return 0.0;
        }
        let mut disconnected = 0u64;
        let mut total = 0u64;
        for &s in &healthy {
            for &d in &healthy {
                if s == d {
                    continue;
                }
                total += 1;
                if route_odd_even(faults, s, d, max_hops).is_none() {
                    disconnected += 1;
                }
            }
        }
        disconnected as f64 / total as f64
    }

    #[test]
    fn multi_destination_fraction_matches_brute_force() {
        // Small grids, a spread of fault densities and hop budgets — the
        // single-source BFS must reproduce the per-pair sweep exactly
        // (identical counts, so identical f64 fractions).
        let mut rng = seeded_rng(17);
        for (w, h) in [(4u16, 4u16), (6, 6), (6, 3)] {
            let array = TileArray::new(w, h);
            for faults_n in [0usize, 2, 5, 9] {
                for _ in 0..4 {
                    let faults = FaultMap::sample_uniform(array, faults_n, &mut rng);
                    for max_hops in [3, 8, 40] {
                        let fast = odd_even_disconnected_fraction(&faults, max_hops);
                        let brute = brute_force_disconnected_fraction(&faults, max_hops);
                        assert_eq!(
                            fast, brute,
                            "{w}x{h}, {faults_n} faults, budget {max_hops}:\n{faults}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn reachable_mask_agrees_with_per_pair_routing() {
        let array = TileArray::new(6, 6);
        let mut rng = seeded_rng(23);
        for _ in 0..6 {
            let faults = FaultMap::sample_uniform(array, 7, &mut rng);
            for s in faults.healthy_tiles() {
                let reached = odd_even_reachable(&faults, s, 20);
                for d in array.tiles() {
                    let expect = if s == d {
                        faults.is_healthy(s)
                    } else {
                        route_odd_even(&faults, s, d, 20).is_some()
                    };
                    assert_eq!(reached[array.index_of(d)], expect, "{s}->{d}\n{faults}");
                }
            }
        }
    }

    #[test]
    fn reachable_from_faulty_source_is_empty() {
        let array = TileArray::new(4, 4);
        let t = TileCoord::new(1, 1);
        let faults = FaultMap::from_faulty(array, [t]);
        assert!(odd_even_reachable(&faults, t, 100).iter().all(|&r| !r));
    }

    #[test]
    fn walled_tile_stays_unreachable() {
        let array = TileArray::new(8, 8);
        let centre = TileCoord::new(4, 4);
        let ring: Vec<TileCoord> = array.neighbors(centre).collect();
        let faults = FaultMap::from_faulty(array, ring);
        assert!(route_odd_even(&faults, TileCoord::new(0, 0), centre, 1000).is_none());
    }

    #[test]
    fn hop_budget_is_respected() {
        let array = TileArray::new(8, 8);
        let faults = FaultMap::none(array);
        let s = TileCoord::new(0, 0);
        let d = TileCoord::new(7, 7);
        // Budget below the Manhattan distance: no path.
        assert!(route_odd_even(&faults, s, d, 10).is_none());
        assert!(route_odd_even(&faults, s, d, 14).is_some());
    }

    #[test]
    fn degenerate_and_faulty_endpoints() {
        let array = TileArray::new(4, 4);
        let t = TileCoord::new(1, 1);
        let clean = FaultMap::none(array);
        assert_eq!(route_odd_even(&clean, t, t, 10), Some(vec![t]));
        let dead = FaultMap::from_faulty(array, [t]);
        assert!(route_odd_even(&dead, t, TileCoord::new(0, 0), 10).is_none());
        assert!(route_odd_even(&dead, TileCoord::new(0, 0), t, 10).is_none());
    }
}
