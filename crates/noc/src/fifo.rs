//! FIFO primitives: the router-queue ring buffer and the asynchronous
//! clock-domain-crossing FIFO under every inter-chiplet link.
//!
//! The forwarded clock arrives at each tile with accumulated phase delay
//! and jitter; the paper's footnote 3 notes this is harmless because
//! "our inter-chiplet communication uses asynchronous FIFOs" (ref.\ 12). This
//! module models that crossing the way the hardware does it: a dual-clock
//! FIFO whose read and write pointers cross domains as **Gray codes**, so
//! a pointer sampled mid-transition is off by at most one position and
//! full/empty decisions err only on the safe side.
//!
//! The simulation drives the two ports from independently-phased clocks,
//! so the tests genuinely exercise torn pointer samplings.

use std::collections::VecDeque;
use std::fmt;

/// A ring buffer of [`PacketArena`](crate::arena::PacketArena) slot
/// indices — the storage behind every router input FIFO in the fabric's
/// hot loop.
///
/// The steady-state operations (`push` within capacity, `pop`, `front`,
/// `iter`) never allocate: the backing array is a single boxed slice and
/// the head/length pair wraps around it. A push beyond capacity grows the
/// buffer by doubling (amortised), which only the *local injection* FIFO
/// ever exercises — `Fabric::inject_unbounded` models response traffic
/// buffered in the tile's local memory, so that queue has no hard cap.
/// Link FIFOs are bounded by the plan phase's backpressure check and stay
/// at their construction capacity forever.
///
/// Entries default to `u32` arena indices rather than packets: a "move"
/// in the fabric is one small copy between rings instead of shuffling
/// ~48-byte packet structs through `VecDeque`s. (The fabric itself
/// instantiates `PacketRing<RingEntry>`, a packed `u128` carrying the
/// slot index, cached output port, current-leg target/network, and hop
/// count in one entry.)
///
/// # Examples
///
/// ```
/// use wsp_noc::fifo::PacketRing;
///
/// let mut ring = PacketRing::with_capacity(2);
/// ring.push(7);
/// ring.push(8);
/// assert_eq!(ring.front(), Some(7));
/// assert_eq!(ring.pop(), Some(7));
/// ring.push(9); // wraps around the 2-slot buffer without growing
/// assert_eq!(ring.capacity(), 2);
/// assert_eq!(ring.iter().collect::<Vec<_>>(), vec![8, 9]);
/// ```
#[derive(Debug, Clone)]
pub struct PacketRing<T = u32> {
    buf: Box<[T]>,
    head: u32,
    len: u32,
}

impl<T: Copy + Default> PacketRing<T> {
    /// An empty ring holding up to `capacity` indices before growing
    /// (`capacity` is clamped to at least 1).
    pub fn with_capacity(capacity: usize) -> Self {
        PacketRing {
            buf: vec![T::default(); capacity.max(1)].into_boxed_slice(),
            head: 0,
            len: 0,
        }
    }

    /// Entries currently queued.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the ring holds no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Slots available before the next `push` reallocates.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Appends `idx` at the tail, doubling the backing buffer when full.
    #[inline]
    pub fn push(&mut self, idx: T) {
        if self.len as usize == self.buf.len() {
            self.grow();
        }
        let cap = self.buf.len() as u32;
        let mut pos = self.head + self.len;
        if pos >= cap {
            pos -= cap;
        }
        self.buf[pos as usize] = idx;
        self.len += 1;
    }

    /// Removes and returns the head entry.
    #[inline]
    pub fn pop(&mut self) -> Option<T> {
        if self.len == 0 {
            return None;
        }
        let idx = self.buf[self.head as usize];
        self.head += 1;
        if self.head as usize == self.buf.len() {
            self.head = 0;
        }
        self.len -= 1;
        Some(idx)
    }

    /// The head entry without removing it.
    #[inline]
    pub fn front(&self) -> Option<T> {
        (self.len > 0).then(|| self.buf[self.head as usize])
    }

    /// Iterates the queued indices head-to-tail without consuming them.
    pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
        let cap = self.buf.len() as u32;
        (0..self.len).map(move |i| {
            let mut pos = self.head + i;
            if pos >= cap {
                pos -= cap;
            }
            self.buf[pos as usize]
        })
    }

    /// Doubles the backing buffer, linearising the live entries so the
    /// new layout starts at index 0.
    #[cold]
    fn grow(&mut self) {
        let mut next = vec![T::default(); self.buf.len() * 2].into_boxed_slice();
        for (slot, idx) in next.iter_mut().zip(self.iter()) {
            *slot = idx;
        }
        self.buf = next;
        self.head = 0;
    }
}

/// Converts a binary counter value to its Gray code.
#[inline]
pub fn to_gray(n: u32) -> u32 {
    n ^ (n >> 1)
}

/// Converts a Gray code back to the binary counter value.
#[inline]
pub fn from_gray(g: u32) -> u32 {
    let mut n = g;
    n ^= n >> 16;
    n ^= n >> 8;
    n ^= n >> 4;
    n ^= n >> 2;
    n ^= n >> 1;
    n
}

/// A dual-clock FIFO with Gray-coded pointer synchronisation.
///
/// `DEPTH` must be a power of two. The writer side calls
/// [`AsyncFifo::push`] on write-clock edges; the reader side calls
/// [`AsyncFifo::pop`] on read-clock edges. Each side sees the *other*
/// side's pointer only through a two-flop synchroniser, modelled as a
/// one-sample delay of the Gray-coded pointer.
///
/// # Examples
///
/// ```
/// use wsp_noc::fifo::AsyncFifo;
///
/// let mut fifo: AsyncFifo<u32, 8> = AsyncFifo::new();
/// assert!(fifo.push(7));
/// fifo.sync_pointers();
/// assert_eq!(fifo.pop(), Some(7));
/// ```
#[derive(Debug, Clone)]
pub struct AsyncFifo<T, const DEPTH: usize> {
    slots: Vec<Option<T>>,
    /// Write pointer (binary, free-running).
    wptr: u32,
    /// Read pointer (binary, free-running).
    rptr: u32,
    /// Write pointer as seen by the read domain (Gray, delayed).
    wptr_gray_at_reader: u32,
    /// Read pointer as seen by the write domain (Gray, delayed).
    rptr_gray_at_writer: u32,
    /// In-flight synchroniser stages (one-deep: two-flop synchroniser at
    /// the granularity of port operations).
    sync_queue_w2r: VecDeque<u32>,
    sync_queue_r2w: VecDeque<u32>,
}

impl<T, const DEPTH: usize> AsyncFifo<T, DEPTH> {
    /// Creates an empty FIFO.
    ///
    /// # Panics
    ///
    /// Panics unless `DEPTH` is a power of two of at least 2 (the Gray
    /// pointer scheme requires it).
    pub fn new() -> Self {
        assert!(
            DEPTH.is_power_of_two() && DEPTH >= 2,
            "AsyncFifo DEPTH must be a power of two and at least 2 \
             (Gray-coded pointers wrap modulo 2*DEPTH), got {DEPTH}"
        );
        AsyncFifo {
            slots: (0..DEPTH).map(|_| None).collect(),
            wptr: 0,
            rptr: 0,
            wptr_gray_at_reader: 0,
            rptr_gray_at_writer: 0,
            sync_queue_w2r: VecDeque::new(),
            sync_queue_r2w: VecDeque::new(),
        }
    }

    /// Entries currently committed and visible to an omniscient observer
    /// (for test oracles; hardware never sees this).
    pub fn occupancy(&self) -> usize {
        self.wptr.wrapping_sub(self.rptr) as usize
    }

    /// True emptiness, from the omniscient occupancy — the predicate an
    /// activity scheduler wants ("is there work queued *at all*?"),
    /// distinct from [`AsyncFifo::reader_sees_empty`], which can lag a
    /// push by the Gray-pointer synchroniser delay and report empty
    /// while an entry is already committed.
    pub fn is_empty(&self) -> bool {
        self.occupancy() == 0
    }

    /// Whether the *writer* believes the FIFO is full. Because the read
    /// pointer it compares against is delayed, this can be conservatively
    /// true (never falsely empty space).
    pub fn writer_sees_full(&self) -> bool {
        let rptr_binary = from_gray(self.rptr_gray_at_writer);
        self.wptr.wrapping_sub(rptr_binary) as usize >= DEPTH
    }

    /// Whether the *reader* believes the FIFO is empty. Conservative in
    /// the same way: may report empty although a push just landed.
    pub fn reader_sees_empty(&self) -> bool {
        to_gray(self.rptr) == self.wptr_gray_at_reader
    }

    /// Write-port operation: pushes `value` if the writer-visible state
    /// is not full. Returns whether the push happened.
    pub fn push(&mut self, value: T) -> bool {
        if self.writer_sees_full() {
            return false;
        }
        let idx = (self.wptr as usize) % DEPTH;
        debug_assert!(self.slots[idx].is_none(), "overwrite of live slot");
        self.slots[idx] = Some(value);
        self.wptr = self.wptr.wrapping_add(1);
        self.sync_queue_w2r.push_back(to_gray(self.wptr));
        true
    }

    /// Read-port operation: pops the oldest entry if the reader-visible
    /// state is not empty.
    pub fn pop(&mut self) -> Option<T> {
        if self.reader_sees_empty() {
            return None;
        }
        let idx = (self.rptr as usize) % DEPTH;
        let value = self.slots[idx].take();
        debug_assert!(value.is_some(), "pop of empty slot");
        self.rptr = self.rptr.wrapping_add(1);
        self.sync_queue_r2w.push_back(to_gray(self.rptr));
        value
    }

    /// Advances the two-flop pointer synchronisers by one stage — call
    /// this once per "clock tick" of whichever domain is being modelled.
    /// Pointers published by `push`/`pop` become visible to the other
    /// side only after passing through here.
    pub fn sync_pointers(&mut self) {
        if let Some(g) = self.sync_queue_w2r.pop_front() {
            self.wptr_gray_at_reader = g;
        }
        if let Some(g) = self.sync_queue_r2w.pop_front() {
            self.rptr_gray_at_writer = g;
        }
    }
}

impl<T, const DEPTH: usize> Default for AsyncFifo<T, DEPTH> {
    fn default() -> Self {
        AsyncFifo::new()
    }
}

impl<T, const DEPTH: usize> fmt::Display for AsyncFifo<T, DEPTH> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "async FIFO depth {DEPTH}, occupancy {}",
            self.occupancy()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt as _;
    use wsp_common::seeded_rng;

    #[test]
    fn packet_ring_wraps_around_at_capacity_without_growing() {
        let mut ring = PacketRing::with_capacity(4);
        // Fill, then interleave pops and pushes so head/tail lap the
        // buffer several times; capacity must never change and order must
        // hold through every wrap.
        for v in 0..4 {
            ring.push(v);
        }
        assert_eq!(ring.len(), 4);
        for lap in 0..10u32 {
            for step in 0..4u32 {
                let expect = lap * 4 + step;
                assert_eq!(ring.front(), Some(expect));
                assert_eq!(ring.pop(), Some(expect));
                ring.push(expect + 4);
            }
            assert_eq!(ring.capacity(), 4, "bounded use must not grow");
        }
        let queued: Vec<u32> = ring.iter().collect();
        assert_eq!(queued, vec![40, 41, 42, 43]);
    }

    #[test]
    fn packet_ring_grows_preserving_order_when_overfilled() {
        let mut ring = PacketRing::with_capacity(2);
        // Offset the head first so growth happens mid-wrap.
        ring.push(100);
        ring.push(101);
        assert_eq!(ring.pop(), Some(100));
        for v in 102..110 {
            ring.push(v);
        }
        assert!(ring.capacity() >= 9);
        let drained: Vec<u32> = std::iter::from_fn(|| ring.pop()).collect();
        assert_eq!(drained, (101..110).collect::<Vec<_>>());
        assert!(ring.is_empty());
        assert_eq!(ring.pop(), None);
        assert_eq!(ring.front(), None);
    }

    #[test]
    fn packet_ring_drains_to_empty_and_reuses_slots() {
        let mut ring = PacketRing::with_capacity(3);
        for round in 0..50u32 {
            ring.push(round);
            ring.push(round + 1);
            assert_eq!(ring.pop(), Some(round));
            assert_eq!(ring.pop(), Some(round + 1));
            assert!(ring.is_empty());
        }
        assert_eq!(ring.capacity(), 3);
    }

    #[test]
    fn packet_ring_zero_capacity_is_clamped_to_one() {
        let mut ring = PacketRing::with_capacity(0);
        assert_eq!(ring.capacity(), 1);
        ring.push(5);
        ring.push(6); // grows rather than corrupting
        assert_eq!(ring.pop(), Some(5));
        assert_eq!(ring.pop(), Some(6));
    }

    #[test]
    fn gray_code_round_trips() {
        for n in 0..4096u32 {
            assert_eq!(from_gray(to_gray(n)), n);
        }
    }

    #[test]
    fn gray_code_changes_one_bit_per_increment() {
        for n in 0..4096u32 {
            let diff = to_gray(n) ^ to_gray(n + 1);
            assert_eq!(diff.count_ones(), 1, "n={n}");
        }
    }

    #[test]
    fn simple_fifo_order() {
        let mut fifo: AsyncFifo<u32, 4> = AsyncFifo::new();
        for v in 0..4 {
            assert!(fifo.push(v));
            fifo.sync_pointers();
        }
        // Writer now sees full (4 entries, depth 4).
        assert!(fifo.writer_sees_full());
        for v in 0..4 {
            fifo.sync_pointers();
            assert_eq!(fifo.pop(), Some(v));
        }
        fifo.sync_pointers();
        assert!(fifo.reader_sees_empty());
    }

    #[test]
    fn flags_err_only_on_the_safe_side() {
        let mut fifo: AsyncFifo<u8, 4> = AsyncFifo::new();
        assert!(fifo.push(1));
        // The reader has NOT seen the pointer yet: empty is reported
        // conservatively even though data exists.
        assert!(fifo.reader_sees_empty());
        assert_eq!(fifo.pop(), None);
        fifo.sync_pointers();
        assert!(!fifo.reader_sees_empty());
        assert_eq!(fifo.pop(), Some(1));
    }

    #[test]
    fn is_empty_tracks_occupancy_not_the_synchronised_view() {
        let mut fifo: AsyncFifo<u8, 4> = AsyncFifo::new();
        assert!(fifo.is_empty());
        assert!(fifo.push(9));
        // The entry is committed immediately, so the omniscient predicate
        // flips at once — while the reader's CDC-delayed view still says
        // empty until the Gray pointer crosses.
        assert!(!fifo.is_empty());
        assert!(fifo.reader_sees_empty());
        fifo.sync_pointers();
        assert!(!fifo.reader_sees_empty());
        assert_eq!(fifo.pop(), Some(9));
        assert!(fifo.is_empty());
    }

    #[test]
    fn never_overflows_and_never_loses_data_across_domains() {
        // Torture: writer and reader tick at unrelated rates; every value
        // pushed must come out exactly once, in order.
        let mut rng = seeded_rng(99);
        for _ in 0..50 {
            let mut fifo: AsyncFifo<u32, 8> = AsyncFifo::new();
            let mut next_write = 0u32;
            let mut next_read = 0u32;
            let total = 500u32;
            while next_read < total {
                // Random interleave of domain activity.
                if rng.random_bool(0.55) && next_write < total && fifo.push(next_write) {
                    next_write += 1;
                }
                if rng.random_bool(0.5) {
                    if let Some(v) = fifo.pop() {
                        assert_eq!(v, next_read, "out-of-order data");
                        next_read += 1;
                    }
                }
                fifo.sync_pointers();
                assert!(fifo.occupancy() <= 8, "overflow");
            }
        }
    }

    #[test]
    fn pointer_wraparound_is_handled() {
        // Push/pop far more than the pointer width of one lap.
        let mut fifo: AsyncFifo<u32, 2> = AsyncFifo::new();
        for v in 0..1000u32 {
            while !fifo.push(v) {
                fifo.sync_pointers();
            }
            fifo.sync_pointers();
            loop {
                fifo.sync_pointers();
                if let Some(got) = fifo.pop() {
                    assert_eq!(got, v);
                    break;
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_depth_rejected() {
        let _: AsyncFifo<u8, 3> = AsyncFifo::new();
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn depth_one_rejected_despite_being_a_power_of_two() {
        // 1 passes `is_power_of_two`, so the message must call out the
        // minimum-depth rule rather than blame the power-of-two one.
        let _: AsyncFifo<u8, 1> = AsyncFifo::new();
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn depth_zero_rejected() {
        let _: AsyncFifo<u8, 0> = AsyncFifo::new();
    }

    #[test]
    fn minimal_depth_two_fifo_works_end_to_end() {
        // The smallest legal FIFO still round-trips data in order with
        // the full synchroniser delay in play.
        let mut fifo: AsyncFifo<u8, 2> = AsyncFifo::new();
        assert!(fifo.push(1));
        assert!(fifo.push(2));
        assert!(fifo.writer_sees_full());
        assert!(!fifo.push(3));
        fifo.sync_pointers();
        fifo.sync_pointers();
        assert_eq!(fifo.pop(), Some(1));
        assert_eq!(fifo.pop(), Some(2));
        assert_eq!(fifo.pop(), None);
    }

    #[test]
    fn display_reports_occupancy() {
        let mut fifo: AsyncFifo<u8, 4> = AsyncFifo::new();
        fifo.push(1);
        assert_eq!(fifo.to_string(), "async FIFO depth 4, occupancy 1");
    }
}
