//! The reusable cycle-level NoC fabric engine.
//!
//! [`Fabric`] owns everything that happens *between* endpoints on the dual
//! dimension-ordered mesh: per-tile router FIFOs (one input queue per side
//! plus a local injection queue, per network), round-robin link arbitration
//! with backpressure, and relay re-injection at intermediate tiles when a
//! pair rides a two-leg [`NetworkChoice::Relay`] route. Endpoint policy —
//! who injects what, when responses are generated, what statistics a
//! traffic study keeps — lives with the caller: the synthetic-traffic
//! simulator ([`crate::traffic::NocSim`]) and the ISA-level machine in
//! `waferscale::machine` both drive this same engine.
//!
//! The API is deliberately small: [`Fabric::inject`] enqueues a packet at
//! its source tile, [`Fabric::tick`] advances one cycle and returns the
//! packets that reached their *final* destination this cycle (relay legs
//! are handled internally), and [`Fabric::drain`] ticks until the network
//! is empty. Per-link statistics (forwarded packets, stall cycles, peak
//! queue occupancy) expose where contention concentrates.
//!
//! # Deterministic threading
//!
//! Each tick is split into a *plan* phase and an *apply* phase. Planning
//! reads only the pre-cycle router state (queue heads, round-robin
//! pointers, downstream occupancy), so every tile's arbitration decision
//! is a pure function of the previous cycle and the tile rows can be
//! partitioned into bands planned by independent worker threads
//! ([`Fabric::set_threads`]). The apply phase then commits the planned
//! moves sequentially in canonical `(network, tile, output port)` order.
//! Because the plan does not depend on the order bands are computed in,
//! the fabric is **bit-identical at any thread count** — the parallel
//! backend is an implementation detail, not a different simulator.
//!
//! # Data layout and the fused fast path
//!
//! In-flight packets live in one struct-of-arrays
//! [`PacketArena`](crate::arena::PacketArena); router FIFOs are
//! [`PacketRing`](crate::fifo::PacketRing)s of `u32` arena indices, so a
//! hop moves 4 bytes instead of a ~48-byte packet, and all per-tick
//! scratch (planned moves, staged arrivals, ejected indices) is owned by
//! the fabric and cleared, not reallocated — the steady-state tick
//! performs **zero heap allocations** (pinned by a counting-allocator
//! regression test).
//!
//! The two-pass plan/apply split exists only to keep plan shards
//! race-free; whenever planning would run on a single shard anyway
//! (`threads == 1`, or the active set is below the banding threshold),
//! [`Fabric::tick_into`] takes a *fused* single pass that plans each tile
//! and applies its grants immediately. Fusion is bit-identical to the
//! split by construction:
//!
//! - grants read a pre-pop snapshot of the tile's own head routes and
//!   round-robin pointers, so a tile's own pops cannot disturb its later
//!   output ports;
//! - pushes (link arrivals) are staged and committed only at the end of
//!   each network's pass, exactly as the apply phase does;
//! - the downstream-occupancy backpressure check reconstructs the
//!   pre-cycle queue length: each FIFO pops at most once per cycle, and
//!   pops are stamped with the tick that performed them, so
//!   `len + (popped this tick)` is the length the plan phase would have
//!   read;
//! - the two networks share no queue state, so walking net 0 fully
//!   before net 1 matches the canonical commit order, and relay
//!   re-injection/delivery is deferred until both passes complete.
//!
//! # Active-set scheduling
//!
//! A tile whose five input FIFOs are all empty on a network cannot plan a
//! move, a stall, or a round-robin update on that network, so sweeping it
//! is pure overhead. Each [`Network`] therefore keeps a per-tile occupancy
//! count and a *wake list* of tiles with at least one queued packet,
//! maintained at every push and pop. Under the default
//! [`Stepping::Sparse`] mode, each tick canonicalises the wake lists
//! (drop drained tiles, sort ascending) and plans only the awake tiles;
//! the apply phase wakes every destination it pushes into. Because
//! "awake" is exactly "occupancy > 0" and the wake order is sorted, the
//! planned move stream — and therefore every counter and every packet —
//! is byte-identical to the dense sweep at any thread count
//! ([`Stepping::Dense`] remains available as the reference).
//!
//! # Examples
//!
//! ```
//! use wsp_noc::{Fabric, FabricPacket, NetworkChoice, NetworkKind, PacketKind};
//! use wsp_topo::{TileArray, TileCoord};
//!
//! let array = TileArray::new(4, 4);
//! let mut fabric = Fabric::new(array, 4);
//! let id = fabric.allocate_id();
//! let packet = FabricPacket::request(
//!     id,
//!     TileCoord::new(0, 0),
//!     TileCoord::new(3, 3),
//!     NetworkChoice::Direct(NetworkKind::Xy),
//!     fabric.cycle(),
//! );
//! assert!(fabric.inject(packet));
//! let delivered = fabric.drain();
//! assert_eq!(delivered.len(), 1);
//! assert_eq!(delivered[0].dst, TileCoord::new(3, 3));
//! assert_eq!(delivered[0].kind, PacketKind::Request);
//! ```

use std::ops::Range;
use std::sync::Arc;

use wsp_common::parallel::{band_ranges_into, AdaptiveExecutor, Stepping, WorkerPool};
use wsp_telemetry::{
    DigestJournal, Fnv1a, Histogram, LaneId, NoopSink, PhaseProfiler, Sink, TimeSeries,
};
use wsp_topo::{Direction, TileArray, TileCoord, DIRECTIONS};

use crate::arena::PacketArena;
use crate::fifo::PacketRing;
use crate::kernel::NetworkChoice;
use crate::routing::{next_hop, NetworkKind};

/// Index of the local injection/ejection port in each router's queue array.
const LOCAL: usize = 4;

/// Sentinel in [`Network::head_out`] for an empty input FIFO.
const EMPTY_HEAD: u8 = u8::MAX;

/// `DIRECTIONS[i].opposite().index()` as a table: N↔S, E↔W.
const OPPOSITE: [usize; 4] = [1, 0, 3, 2];

/// Sentinel in the precomputed neighbour-index table for "off the array".
const NO_NEIGHBOR: u32 = u32::MAX;

/// The local injection FIFO is deeper than a link FIFO by this factor —
/// it models the tile's outbound staging buffer in local SRAM.
const LOCAL_QUEUE_FACTOR: usize = 4;

/// One router-FIFO entry: the arena slot plus everything the steady-state
/// loop needs about the packet's current leg — the cached output port *at
/// this tile*, the current-leg target and network, and the hop count —
/// packed into one `u128`. A forward therefore moves a packet hop-to-hop
/// without ever touching the (randomly-indexed) arena: the arena is read
/// only at injection, relay re-injection, and delivery.
///
/// Layout: bits 0–31 slot, 32–39 output port, 40–55 target x, 56–71
/// target y, 72–79 network, 80–111 hops.
#[derive(Clone, Copy, Default)]
struct RingEntry(u128);

impl RingEntry {
    fn new(slot: u32, out: u8, target: TileCoord, net: NetworkKind, hops: u32) -> Self {
        RingEntry(
            u128::from(slot)
                | u128::from(out) << 32
                | u128::from(target.x) << 40
                | u128::from(target.y) << 56
                | u128::from(net as u8) << 72
                | u128::from(hops) << 80,
        )
    }

    fn slot(self) -> u32 {
        self.0 as u32
    }

    /// The cached output port at the tile whose FIFO holds this entry.
    fn out(self) -> u8 {
        (self.0 >> 32) as u8
    }

    fn target(self) -> TileCoord {
        TileCoord::new((self.0 >> 40) as u16, (self.0 >> 56) as u16)
    }

    fn net(self) -> NetworkKind {
        if (self.0 >> 72) as u8 == 0 {
            NetworkKind::Xy
        } else {
            NetworkKind::Yx
        }
    }

    fn hops(self) -> u32 {
        (self.0 >> 80) as u32
    }

    /// The same entry with one more link traversal recorded.
    fn bumped(self) -> Self {
        RingEntry(self.0 + (1u128 << 80))
    }
}

/// The output port a packet heading for `target` on `net` takes at
/// `tile`: the local ejection port at its endpoint, otherwise the
/// dimension-ordered next-hop direction.
#[inline]
fn out_port_for(tile: TileCoord, target: TileCoord, net: NetworkKind) -> u8 {
    match next_hop(tile, target, net) {
        None => LOCAL as u8,
        Some(nb) => direction_between(tile, nb) as u8,
    }
}

/// What a packet is doing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketKind {
    /// Travelling src→dst on the leg networks the kernel chose.
    Request,
    /// Travelling dst→src on the complementary networks, retracing the
    /// request's physical path in reverse.
    Response,
}

/// A single-flit packet in flight on the fabric (the 100-bit packet of
/// Sec. VI — payload narrow enough that every message is one flit).
#[derive(Debug, Clone, Copy)]
pub struct FabricPacket {
    /// Caller-allocated identifier (see [`Fabric::allocate_id`]); the
    /// fabric never interprets it, endpoints use it to match traffic.
    pub id: u64,
    /// Tile where this packet entered the fabric.
    pub src: TileCoord,
    /// Final destination tile.
    pub dst: TileCoord,
    /// The kernel's routing decision for the pair.
    pub choice: NetworkChoice,
    /// Request or response.
    pub kind: PacketKind,
    /// Which leg of a relayed route this packet is on (always 0 for
    /// direct routes). Crate-visible so the packet arena can mirror it
    /// into its packed metadata column.
    pub(crate) leg: u8,
    /// Fabric cycle at which the *request* was injected; responses inherit
    /// it so the delivery cycle minus this is the round-trip time.
    pub injected_at: u64,
    /// Link traversals so far, across both legs and both packets of the
    /// request/response pair.
    pub hops: u32,
}

impl FabricPacket {
    /// A fresh request packet on leg 0.
    ///
    /// # Panics
    ///
    /// Panics if `choice` is [`NetworkChoice::Disconnected`]: unreachable
    /// pairs must be rejected before touching the fabric.
    pub fn request(
        id: u64,
        src: TileCoord,
        dst: TileCoord,
        choice: NetworkChoice,
        now: u64,
    ) -> Self {
        assert!(
            choice != NetworkChoice::Disconnected,
            "disconnected packets are never injected"
        );
        FabricPacket {
            id,
            src,
            dst,
            choice,
            kind: PacketKind::Request,
            leg: 0,
            injected_at: now,
            hops: 0,
        }
    }

    /// The response to a delivered request: same id and route choice,
    /// endpoints swapped, travelling on the complementary networks.
    /// `injected_at` and `hops` carry over so the delivery cycle yields
    /// the round-trip latency.
    pub fn response(request: &FabricPacket) -> Self {
        debug_assert_eq!(request.kind, PacketKind::Request);
        FabricPacket {
            id: request.id,
            src: request.dst,
            dst: request.src,
            choice: request.choice,
            kind: PacketKind::Response,
            leg: 0,
            injected_at: request.injected_at,
            hops: request.hops,
        }
    }

    /// The network carrying the present leg.
    fn network(&self) -> NetworkKind {
        self.choice
            .leg_network(self.kind == PacketKind::Response, self.leg)
    }
}

/// Per-tile router hot state, packed into exactly one cache line so a
/// plan or fused visit touches one line for its own arbitration state and
/// one line per downstream backpressure probe. The tick loop is
/// memory-bound on random tile access; this layout is the perf lever.
#[repr(C, align(64))]
#[derive(Clone, Copy)]
struct Router {
    /// Mirror of each *link-side* input FIFO's length (ports 0..4; the
    /// local FIFO is never a forward destination). Exact, because
    /// [`Fabric::new`] bounds `queue_capacity` to `u16::MAX`; co-located
    /// with `popped_at` so the backpressure probe is one line.
    link_len: [u16; 4],
    /// Routing decision at each FIFO head (`EMPTY_HEAD` when empty), so
    /// the plan reads a flat `[u8; 5]` instead of chasing five queue
    /// heads through the routing kernel. Valid because a queued packet's
    /// route is fixed while it waits: the only `leg` mutation happens
    /// between an eject pop and a fresh relay [`push`](Network::push).
    head_out: [u8; 5],
    /// Round-robin pointers, one per output port; values 0..5.
    rr: [u8; 5],
    /// Tick stamp of the most recent pop from each link-side FIFO. The
    /// fused fast path reconstructs a downstream FIFO's pre-cycle length
    /// as `len + (popped_at == current tick)` — valid because each FIFO
    /// pops at most once per cycle and pushes are deferred to the end of
    /// the network pass.
    popped_at: [u64; 4],
}

impl Router {
    fn new() -> Self {
        Router {
            link_len: [0; 4],
            head_out: [EMPTY_HEAD; 5],
            rr: [0; 5],
            popped_at: [0; 4],
        }
    }
}

/// One mesh network's router state: five input FIFOs per tile
/// (N, S, E, W, local injection), plus the active-set tracker.
///
/// FIFOs hold [`PacketArena`] indices; packet fields live in the shared
/// arena owned by [`Fabric`].
struct Network {
    /// Entries carry the packet's whole per-hop hot state (see
    /// [`RingEntry`]), so the head-route refresh after a pop reads the
    /// next entry off the ring line just touched instead of chasing the
    /// next packet's (cold) arena line — and a forward re-derives the
    /// downstream output port from the entry alone.
    queues: Vec<[PacketRing<RingEntry>; 5]>,
    /// One-cache-line hot state per tile; see [`Router`].
    routers: Vec<Router>,
    /// Packets queued at each tile across all five FIFOs. The invariant
    /// `occ[t] > 0 ⟺ t can plan a move/stall/rr-update` is what makes
    /// sparse stepping bit-identical to the dense sweep.
    occ: Vec<u32>,
    /// Per-row occupancy bitmask: bit `col` of `row_mask[row]` is set iff
    /// `occ[row * mask_cols + col] > 0`. The dense sweep walks set bits
    /// with `trailing_zeros` instead of touching every idle tile.
    row_mask: Vec<u64>,
    /// Columns per `row_mask` word; 0 disables the mask (cols > 64).
    mask_cols: usize,
    /// Tiles with `occ > 0`, maintained in O(1) at every push and pop —
    /// the dense path's active count, without walking the wake list.
    live: usize,
    /// Tiles with `occ > 0` (plus possibly drained stragglers until the
    /// next [`Network::prune_wake`]). Every push registers its tile here.
    wake: Vec<usize>,
    /// Membership dedup for `wake`, so a tile is listed at most once.
    in_wake: Vec<bool>,
}

impl Network {
    fn new(array: TileArray, queue_capacity: usize) -> Self {
        let tiles = array.tile_count();
        let cols = array.cols() as usize;
        let mask_cols = if cols <= 64 { cols } else { 0 };
        // Link FIFOs never outgrow the plan phase's backpressure cap; the
        // local injection FIFO starts at its bounded-inject depth and
        // grows only under `inject_unbounded` response buffering.
        let fresh_queues = || {
            [
                PacketRing::with_capacity(queue_capacity),
                PacketRing::with_capacity(queue_capacity),
                PacketRing::with_capacity(queue_capacity),
                PacketRing::with_capacity(queue_capacity),
                PacketRing::with_capacity(queue_capacity * LOCAL_QUEUE_FACTOR),
            ]
        };
        Network {
            queues: (0..tiles).map(|_| fresh_queues()).collect(),
            routers: vec![Router::new(); tiles],
            occ: vec![0; tiles],
            row_mask: if mask_cols != 0 {
                vec![0; array.rows() as usize]
            } else {
                Vec::new()
            },
            mask_cols,
            live: 0,
            wake: Vec::new(),
            in_wake: vec![false; tiles],
        }
    }

    /// Enqueues arena slot `slot` (heading for `target` on `net`, with
    /// `hops` traversals so far) into FIFO `port` of `tile_idx`,
    /// maintaining the occupancy count, the wake list, the row bitmask,
    /// and the cached head routing decision. All fabric pushes go
    /// through here. The slot's output port *at this tile* is computed
    /// once here and packed into the ring entry, so later head refreshes
    /// and forwards never go back to the arena.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    fn push(
        &mut self,
        tile: TileCoord,
        tile_idx: usize,
        port: usize,
        slot: u32,
        target: TileCoord,
        net: NetworkKind,
        hops: u32,
    ) {
        let out = out_port_for(tile, target, net);
        let queue = &mut self.queues[tile_idx][port];
        queue.push(RingEntry::new(slot, out, target, net, hops));
        let router = &mut self.routers[tile_idx];
        if queue.len() == 1 {
            router.head_out[port] = out;
        }
        if port < LOCAL {
            router.link_len[port] += 1;
        }
        self.note_push(tile_idx);
    }

    /// Dequeues the head of FIFO `port` at `tile_idx`, refreshing the
    /// cached routing decision for the new head (off the ring entry, not
    /// the arena) and stamping the pop with `tick` (the fused path's
    /// pre-cycle-length witness). All fabric pops go through here.
    #[inline]
    fn pop(&mut self, tile_idx: usize, port: usize, tick: u64) -> RingEntry {
        let queue = &mut self.queues[tile_idx][port];
        let entry = queue.pop().expect("planned head");
        let head_out = match queue.front() {
            Some(next) => next.out(),
            None => EMPTY_HEAD,
        };
        let router = &mut self.routers[tile_idx];
        router.head_out[port] = head_out;
        if port < LOCAL {
            router.popped_at[port] = tick;
            router.link_len[port] -= 1;
        }
        self.note_pop(tile_idx);
        entry
    }

    /// Registers one packet pushed into any FIFO of `tile_idx`.
    #[inline]
    fn note_push(&mut self, tile_idx: usize) {
        self.occ[tile_idx] += 1;
        if self.occ[tile_idx] == 1 {
            self.live += 1;
        }
        if self.mask_cols != 0 {
            self.row_mask[tile_idx / self.mask_cols] |= 1u64 << (tile_idx % self.mask_cols);
        }
        if !self.in_wake[tile_idx] {
            self.in_wake[tile_idx] = true;
            self.wake.push(tile_idx);
        }
    }

    /// Registers one packet popped from any FIFO of `tile_idx`. The tile
    /// stays on the wake list until the next prune observes `occ == 0`.
    #[inline]
    fn note_pop(&mut self, tile_idx: usize) {
        self.occ[tile_idx] -= 1;
        if self.occ[tile_idx] == 0 {
            self.live -= 1;
            if self.mask_cols != 0 {
                self.row_mask[tile_idx / self.mask_cols] &= !(1u64 << (tile_idx % self.mask_cols));
            }
        }
    }

    /// Canonicalises the wake list: drops drained tiles and sorts
    /// ascending, so sparse planning visits awake tiles in exactly the
    /// order the dense sweep would.
    fn prune_wake(&mut self) {
        let Network {
            occ, wake, in_wake, ..
        } = self;
        wake.retain(|&tile_idx| {
            let live = occ[tile_idx] > 0;
            if !live {
                in_wake[tile_idx] = false;
            }
            live
        });
        wake.sort_unstable();
    }

    fn total_occupancy(&self) -> usize {
        self.occ.iter().map(|&n| n as usize).sum()
    }
}

/// Per-link counters kept by the fabric. A "link" is the connection
/// leaving a tile in one of the four directions on one network.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct LinkStats {
    /// Packets that traversed this link.
    pub forwarded: u64,
    /// Cycles an arbitration winner could not traverse this link because
    /// the downstream input FIFO was full — the contention signal.
    pub stall_cycles: u64,
    /// Highest occupancy the downstream input FIFO ever reached.
    pub peak_occupancy: usize,
}

/// One move decided by the plan phase of a tick, to be committed in
/// canonical order by the apply phase.
enum PlannedMove {
    /// The granted head of `(tile, in_port)` ejects at its endpoint.
    Eject { tile_idx: usize, in_port: usize },
    /// The granted head of `(tile, in_port)` traverses the `out_port` link
    /// into `(nb_idx, in_side)`.
    Forward {
        tile_idx: usize,
        in_port: usize,
        out_port: usize,
        nb_idx: usize,
        in_side: usize,
    },
    /// An arbitration winner could not traverse `out_port`: the downstream
    /// FIFO was full at the start of the cycle.
    Stall { tile_idx: usize, out_port: usize },
}

/// The immutable pre-cycle state a plan worker reads. Deliberately *not*
/// `&Fabric`: the telemetry sink is `Send` but not `Sync`, and planning
/// must never touch it anyway.
struct PlanCtx<'a> {
    queue_capacity: usize,
    /// Precomputed neighbour tile indices per `(tile, direction)`
    /// ([`NO_NEIGHBOR`] off the edge) — no coordinate math in the loop.
    neighbors: &'a [[u32; 4]],
    networks: &'a [Network; 2],
}

impl PlanCtx<'_> {
    /// Plans one tile on one network: for every output port, pick the
    /// round-robin arbitration winner among the input FIFO heads routed
    /// to it, against pre-cycle queue state only. A tile with all five
    /// FIFOs empty plans nothing — the fact the sparse scheduler leans on.
    fn plan_tile(&self, network: &Network, tile_idx: usize, moves: &mut Vec<PlannedMove>) {
        // The cached routing decision per queue head; a head contends for
        // exactly one output port, so grants never overlap. Fold the five
        // heads into per-output-port contender bitmasks.
        let router = &network.routers[tile_idx];
        let mut want = [0u8; 5];
        for (in_port, &out) in router.head_out.iter().enumerate() {
            if out != EMPTY_HEAD {
                want[out as usize] |= 1 << in_port;
            }
        }
        // `out_port` indexes `rr`/`links` too, not just DIRECTIONS.
        #[allow(clippy::needless_range_loop)]
        for out_port in 0..5 {
            let contenders = u32::from(want[out_port]);
            if contenders == 0 {
                continue;
            }
            // Branchless round-robin grant: rotate the 5-bit contender
            // mask so the pointer sits at bit 0; the winner is then the
            // lowest set bit — exactly the first hit of the old
            // `(start + o) % 5` scan.
            let start = usize::from(router.rr[out_port]);
            let rotated = ((contenders >> start) | (contenders << (5 - start))) & 0x1f;
            let in_port = (start + rotated.trailing_zeros() as usize) % 5;
            if out_port == LOCAL {
                moves.push(PlannedMove::Eject { tile_idx, in_port });
                continue;
            }
            let nb_idx = self.neighbors[tile_idx][out_port];
            debug_assert_ne!(nb_idx, NO_NEIGHBOR, "DoR never routes off the array");
            let nb_idx = nb_idx as usize;
            let in_side = OPPOSITE[out_port];
            // Pre-cycle occupancy: each input FIFO is fed by one
            // physical upstream link, so at most one push lands
            // per cycle and the check cannot oversubscribe.
            if usize::from(network.routers[nb_idx].link_len[in_side]) < self.queue_capacity {
                moves.push(PlannedMove::Forward {
                    tile_idx,
                    in_port,
                    out_port,
                    nb_idx,
                    in_side,
                });
            } else {
                moves.push(PlannedMove::Stall { tile_idx, out_port });
            }
        }
    }

    /// Plans one dense band of tiles (the reference sweep) into the
    /// caller's (pre-cleared) per-network move buffers. When the row
    /// bitmasks are live (cols ≤ 64) the walk visits only occupied tiles
    /// via `trailing_zeros` — identical output, because a tile with all
    /// five FIFOs empty plans nothing.
    fn plan_band_into(&self, band: Range<usize>, out: &mut [Vec<PlannedMove>; 2]) {
        for (network, moves) in self.networks.iter().zip(out.iter_mut()) {
            let cols = network.mask_cols;
            if cols == 0 {
                for tile_idx in band.clone() {
                    self.plan_tile(network, tile_idx, moves);
                }
                continue;
            }
            // Bands are tile-index ranges, so clip the first and last
            // rows' masks to the band boundaries.
            let mut row = band.start / cols;
            while row * cols < band.end {
                let base = row * cols;
                let mut bits = network.row_mask[row];
                if base < band.start {
                    bits &= !0u64 << (band.start - base);
                }
                if base + cols > band.end {
                    bits &= (1u64 << (band.end - base)) - 1;
                }
                while bits != 0 {
                    let col = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    self.plan_tile(network, base + col, moves);
                }
                row += 1;
            }
        }
    }

    /// Plans one slice of each network's (sorted) wake list into the
    /// caller's (pre-cleared) buffers. Concatenating the outputs of
    /// consecutive slices replays the dense band walk exactly, because
    /// idle tiles plan nothing.
    fn plan_wake_slices_into(&self, slices: [&[usize]; 2], out: &mut [Vec<PlannedMove>; 2]) {
        for ((network, moves), slice) in self.networks.iter().zip(out.iter_mut()).zip(slices) {
            for &tile_idx in slice {
                self.plan_tile(network, tile_idx, moves);
            }
        }
    }
}

/// Reusable per-tick scratch owned by [`Fabric`] — cleared every tick,
/// reallocated never. Holding these across ticks is what makes the
/// steady-state tick allocation-free.
#[derive(Default)]
struct TickScratch {
    /// One `[moves; 2]` pair per plan shard. Never shrunk: sparse
    /// stepping alternates between 1 and `threads()` shards as the
    /// active set crosses the banding threshold, and shrinking would
    /// free the idle shards' capacity.
    shard_plans: Vec<[Vec<PlannedMove>; 2]>,
    /// Shard band ranges, one buffer per network (dense uses `[0]` only).
    bands: [Vec<Range<usize>>; 2],
    /// Staged link arrivals `(net, dest tile, in side, entry)` — the
    /// entry's hop count already bumped — committed in order after the
    /// moves that produced them.
    arrivals: Vec<(u8, u32, u8, RingEntry)>,
    /// Entries ejected at their endpoint this tick, in canonical
    /// `(network, tile, output port)` order.
    ejected: Vec<RingEntry>,
}

impl TickScratch {
    /// Grows `shard_plans` to at least `shards` pairs and clears the
    /// first `shards` of them for this tick's planning.
    fn reset_shards(&mut self, shards: usize) {
        if self.shard_plans.len() < shards {
            self.shard_plans
                .resize_with(shards, || [Vec::new(), Vec::new()]);
        }
        for pair in &mut self.shard_plans[..shards] {
            pair[0].clear();
            pair[1].clear();
        }
    }
}

/// The reusable dual-network fabric engine. See the module docs for the
/// contract; construction is per fault-free [`TileArray`] geometry — the
/// caller is responsible for only injecting packets whose
/// [`NetworkChoice`] avoids faulty tiles (the kernel's job).
pub struct Fabric {
    array: TileArray,
    queue_capacity: usize,
    /// Row-major tile coordinates, so the hot loop never divides.
    coords: Vec<TileCoord>,
    /// Neighbour tile index per `(tile, direction)`, [`NO_NEIGHBOR`] off
    /// the edge — the hot loop's replacement for coordinate arithmetic.
    neighbors: Vec<[u32; 4]>,
    networks: [Network; 2],
    /// Struct-of-arrays store of every in-flight packet; router FIFOs
    /// hold indices into it. Freed slots recycle, so steady-state
    /// traffic reaches a fixed footprint.
    arena: PacketArena,
    /// Per-tick scratch buffers, cleared not reallocated.
    scratch: TickScratch,
    /// Per-link stats: `[network][tile][direction]`.
    links: [Vec<[LinkStats; 4]>; 2],
    cycle: u64,
    /// Ticks actually executed (excludes cycles jumped by
    /// [`Fabric::skip_cycles`]) — the wall-clock-free gauge the
    /// O(events)-termination tests assert on.
    ticks: u64,
    next_id: u64,
    relay_forwards: u64,
    link_traversals: u64,
    /// How ticks visit tiles: sparse active-set walk (default) or the
    /// dense reference sweep. Results are bit-identical either way.
    stepping: Stepping,
    /// Adaptive executor for the plan phase: bands across a worker pool
    /// when the active set is large enough, inline otherwise.
    exec: AdaptiveExecutor,
    /// Per-tick active-set sizes (awake tiles summed over both networks),
    /// sampled in *both* stepping modes so the exported telemetry is
    /// independent of the mode and thread count.
    active_tiles: Histogram,
    /// Telemetry sink; [`NoopSink`] by default so the hot path pays one
    /// `enabled()` virtual call per tick when tracing is off.
    sink: Box<dyn Sink>,
    /// Sampling cadence for the bounded time series below (0 = off).
    sample_every: u64,
    /// Per-tick gauge series `(name, series)`: active tiles, per-network
    /// queue occupancy, packets in flight. Sampled from pre-cycle queue
    /// state, so the series are pure functions of architectural state —
    /// bit-identical across stepping modes and thread counts.
    samples: [(&'static str, TimeSeries); 4],
    /// Determinism-digest journal; `None` when digests are off. Lanes are
    /// recorded from post-cycle router state every `journal.every()`
    /// cycles. The machine also records its per-tile lanes here (same
    /// cycle domain — it ticks this fabric once per machine step).
    journal: Option<DigestJournal>,
    /// Wall-clock attribution of each tick's `plan` and `apply` phases.
    /// Disabled by default; never feeds deterministic output.
    profiler: PhaseProfiler,
}

impl Fabric {
    /// A fabric over `array` with the given per-link input FIFO depth.
    ///
    /// # Panics
    ///
    /// Panics if `queue_capacity` exceeds `u16::MAX`: link FIFO lengths
    /// are mirrored as `u16` in the one-cache-line [`Router`] hot state.
    pub fn new(array: TileArray, queue_capacity: usize) -> Self {
        assert!(
            queue_capacity <= u16::MAX as usize,
            "link FIFO depth must fit in u16"
        );
        let tiles = array.tile_count();
        let coords: Vec<TileCoord> = (0..tiles).map(|i| array.coord_of(i)).collect();
        let neighbors: Vec<[u32; 4]> = coords
            .iter()
            .map(|&tile| {
                let mut nb = [NO_NEIGHBOR; 4];
                for (d, dir) in DIRECTIONS.into_iter().enumerate() {
                    if let Some(n) = array.neighbor(tile, dir) {
                        nb[d] = array.index_of(n) as u32;
                    }
                }
                nb
            })
            .collect();
        Fabric {
            array,
            queue_capacity,
            coords,
            neighbors,
            networks: [
                Network::new(array, queue_capacity),
                Network::new(array, queue_capacity),
            ],
            arena: PacketArena::default(),
            scratch: TickScratch::default(),
            links: [
                vec![[LinkStats::default(); 4]; tiles],
                vec![[LinkStats::default(); 4]; tiles],
            ],
            cycle: 0,
            ticks: 0,
            next_id: 0,
            relay_forwards: 0,
            link_traversals: 0,
            stepping: Stepping::default(),
            exec: AdaptiveExecutor::default(),
            active_tiles: Histogram::new(),
            sink: Box::new(NoopSink),
            sample_every: 0,
            samples: Self::make_samples(0),
            journal: None,
            profiler: PhaseProfiler::new(false),
        }
    }

    /// The fabric's four sampled gauge series at cadence `every`.
    fn make_samples(every: u64) -> [(&'static str, TimeSeries); 4] {
        [
            ("fabric.active_tiles", TimeSeries::new(every)),
            ("fabric.net0.occupancy", TimeSeries::new(every)),
            ("fabric.net1.occupancy", TimeSeries::new(every)),
            ("fabric.in_flight", TimeSeries::new(every)),
        ]
    }

    /// Plans ticks with `threads` worker shards (row bands). Results are
    /// bit-identical at any thread count, including 1; `threads <= 1`
    /// drops back to inline planning with no pool at all.
    pub fn set_threads(&mut self, threads: usize) {
        self.exec = AdaptiveExecutor::new(threads);
    }

    /// Shares an existing worker pool (e.g. the machine's) for planning.
    pub fn set_pool(&mut self, pool: Option<Arc<WorkerPool>>) {
        self.exec = AdaptiveExecutor::from_pool(pool);
    }

    /// Shards used by the plan phase of each tick.
    pub fn threads(&self) -> usize {
        self.exec.threads()
    }

    /// Selects how ticks visit tiles (default: [`Stepping::Sparse`]).
    pub fn set_stepping(&mut self, stepping: Stepping) {
        self.stepping = stepping;
    }

    /// The current stepping mode.
    pub fn stepping(&self) -> Stepping {
        self.stepping
    }

    /// The execution path ticks currently take, for bench reporting:
    /// `"wheel"`, `"sparse"`, `"banded"`, or `"sequential"`.
    pub fn executor(&self) -> &'static str {
        match (self.stepping, self.threads()) {
            (Stepping::Wheel, _) => "wheel",
            (Stepping::Sparse, _) => "sparse",
            (Stepping::Dense, t) if t > 1 => "banded",
            (Stepping::Dense, _) => "sequential",
        }
    }

    /// Installs a telemetry sink. Each endpoint delivery then emits a
    /// `fabric` span from injection to delivery (track = destination tile
    /// index), so request/response life-times appear on the trace timeline.
    pub fn set_sink(&mut self, sink: Box<dyn Sink>) {
        self.sink = sink;
    }

    /// Enables per-tick gauge sampling every `every` cycles (0 = off, the
    /// default). Resets any previously collected series. The sampled
    /// values are pure functions of queue state, so the series land in
    /// the deterministic bench report.
    pub fn set_sampling(&mut self, every: u64) {
        self.sample_every = every;
        self.samples = Self::make_samples(every);
    }

    /// Sampling cadence in cycles (0 = off).
    pub fn sample_every(&self) -> u64 {
        self.sample_every
    }

    /// The collected gauge series as `(name, series)` pairs.
    pub fn timeseries(&self) -> impl Iterator<Item = (&'static str, &TimeSeries)> {
        self.samples.iter().map(|(name, s)| (*name, s))
    }

    /// Enables determinism digests every `every` cycles (0 = off, the
    /// default). Resets any previously recorded journal.
    pub fn set_digests(&mut self, every: u64) {
        self.journal =
            (every != 0).then(|| DigestJournal::new(every, self.array.cols(), self.array.rows()));
    }

    /// The determinism-digest journal recorded so far, if digests are on.
    pub fn journal(&self) -> Option<&DigestJournal> {
        self.journal.as_ref()
    }

    /// Mutable journal access, for an owning machine recording its own
    /// per-tile lanes into the shared cycle domain.
    pub fn journal_mut(&mut self) -> Option<&mut DigestJournal> {
        self.journal.as_mut()
    }

    /// Turns wall-clock phase profiling of `plan`/`apply` on or off.
    pub fn set_profiling(&mut self, on: bool) {
        self.profiler.set_enabled(on);
    }

    /// The accumulated phase timings.
    pub fn profiler(&self) -> &PhaseProfiler {
        &self.profiler
    }

    /// Exports phase timings as `wall.profile.<prefix><phase>.*` gauges
    /// (`prefix` is `"fabric."` standalone, `"machine.fabric."` when the
    /// machine re-roots them under its own tree).
    pub fn export_profile(&self, sink: &mut dyn Sink, prefix: &str) {
        self.profiler.export(sink, prefix);
    }

    /// The geometry this fabric spans.
    pub fn array(&self) -> TileArray {
        self.array
    }

    /// Cycles ticked so far.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Allocates the next packet id. Ids are consumed even if the
    /// subsequent [`inject`](Fabric::inject) is refused, so id sequences
    /// are stable under backpressure.
    pub fn allocate_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Enqueues `packet` in the local injection FIFO of its `src` tile.
    /// Returns `false` (dropping the packet) when that FIFO is full —
    /// injection backpressure the endpoint must handle by retrying later.
    pub fn inject(&mut self, packet: FabricPacket) -> bool {
        let net = packet.network() as usize;
        let idx = self.array.index_of(packet.src);
        if self.networks[net].queues[idx][LOCAL].len() < self.queue_capacity * LOCAL_QUEUE_FACTOR {
            let slot = self.arena.alloc(&packet);
            let Fabric {
                coords,
                networks,
                arena,
                ..
            } = self;
            networks[net].push(
                coords[idx],
                idx,
                LOCAL,
                slot,
                arena.leg_target(slot),
                arena.network_of(slot),
                packet.hops,
            );
            true
        } else {
            false
        }
    }

    /// Enqueues `packet` at its `src` tile without a capacity check:
    /// response traffic regenerated at a destination is buffered in that
    /// tile's local memory rather than refused.
    pub fn inject_unbounded(&mut self, packet: FabricPacket) {
        let net = packet.network() as usize;
        let idx = self.array.index_of(packet.src);
        let slot = self.arena.alloc(&packet);
        let Fabric {
            coords,
            networks,
            arena,
            ..
        } = self;
        networks[net].push(
            coords[idx],
            idx,
            LOCAL,
            slot,
            arena.leg_target(slot),
            arena.network_of(slot),
            packet.hops,
        );
    }

    /// Packets currently queued anywhere in the fabric.
    pub fn in_flight(&self) -> usize {
        self.networks[0].total_occupancy() + self.networks[1].total_occupancy()
    }

    /// Packets currently resident in the arena. Always equals
    /// [`Fabric::in_flight`] between ticks — the leak invariant the
    /// proptest harness asserts after every drain.
    pub fn arena_live(&self) -> usize {
        self.arena.live()
    }

    /// Total arena slots ever allocated — the high-water in-flight
    /// footprint (slots recycle; this never shrinks).
    pub fn arena_slots(&self) -> usize {
        self.arena.slots()
    }

    /// Advances one cycle: every router grants each output port to one
    /// input FIFO head round-robin, winners move one hop (or stall on a
    /// full downstream FIFO), relay packets reaching their intermediate
    /// tile are re-injected on their second leg, and packets reaching
    /// their final endpoint are returned in arbitration order.
    ///
    /// The grant decisions are planned against the *pre-cycle* state (so
    /// each input FIFO pops at most once per cycle — one read port per
    /// FIFO — and a full downstream FIFO stalls the link even if it also
    /// drains this cycle), then committed sequentially in `(network,
    /// tile, output port)` order. Planning shards across the worker pool
    /// when one is installed; see the module docs for why the result is
    /// bit-identical at any thread count.
    pub fn tick(&mut self) -> Vec<FabricPacket> {
        let mut delivered = Vec::new();
        self.tick_into(&mut delivered);
        delivered
    }

    /// [`Fabric::tick`] into a caller-owned delivery buffer, which is
    /// cleared first — the allocation-free form hot drivers loop on.
    pub fn tick_into(&mut self, delivered: &mut Vec<FabricPacket>) {
        delivered.clear();
        self.cycle += 1;
        self.ticks += 1;

        // Sample the active set in both stepping modes: the sample is a
        // pure function of queue state, so the exported histogram is
        // identical across modes and threads. Only the sparse walks need
        // the wake lists canonicalised (pruned and sorted); the dense
        // sweep reads the O(1) occupied-tile counters instead.
        let mut active = 0usize;
        match self.stepping {
            Stepping::Dense => {
                for network in &self.networks {
                    active += network.live;
                }
            }
            Stepping::Sparse | Stepping::Wheel => {
                for network in &mut self.networks {
                    network.prune_wake();
                    active += network.wake.len();
                }
            }
        }
        self.active_tiles.record(active as u64);

        // Gauge sampling reads the same pre-cycle queue state the sample
        // above does; all four series share a cadence, so gating the
        // occupancy walk on the first one's acceptance test is exact.
        if self.sample_every != 0 && self.samples[0].1.wants(self.cycle) {
            let cycle = self.cycle;
            let occ0 = self.networks[0].total_occupancy();
            let occ1 = self.networks[1].total_occupancy();
            self.samples[0].1.record(cycle, active as f64);
            self.samples[1].1.record(cycle, occ0 as f64);
            self.samples[2].1.record(cycle, occ1 as f64);
            self.samples[3].1.record(cycle, (occ0 + occ1) as f64);
        }

        // Whenever planning would run on a single shard anyway, the
        // plan/apply split buys no parallelism — take the fused single
        // pass instead (bit-identical; see the module docs).
        let fused = match self.stepping {
            Stepping::Dense => self.exec.pool().is_none(),
            Stepping::Sparse | Stepping::Wheel => self.exec.shards_for(active) <= 1,
        };
        if fused {
            let fused_timer = self.profiler.start();
            self.fused_walk(0);
            self.fused_walk(1);
            self.resolve_ejected(delivered);
            self.profiler.stop("fused", fused_timer);
        } else {
            let plan_timer = self.profiler.start();
            let shards = self.plan_into_scratch(active);
            self.profiler.stop("plan", plan_timer);
            let apply_timer = self.profiler.start();
            self.apply_scratch(shards);
            self.resolve_ejected(delivered);
            self.profiler.stop("apply", apply_timer);
        }

        // Digest window boundary: fingerprint every router's post-cycle
        // state (queue contents and round-robin pointers) into per-lane
        // journal entries. Per-lane dedup means idle routers cost no
        // journal space; the walk itself runs only every K cycles.
        if self.journal.as_ref().is_some_and(|j| j.wants(self.cycle)) {
            self.record_net_lanes(self.cycle);
        }

        if self.sink.enabled() {
            for p in delivered.iter() {
                let name = match p.kind {
                    PacketKind::Request => "request",
                    PacketKind::Response => "response",
                };
                let track = self.array.index_of(p.dst) as u64;
                self.sink
                    .span("fabric", name, track, p.injected_at, self.cycle);
            }
        }
    }

    /// The two-pass plan phase, sharded across the executor into the
    /// reusable scratch buffers. Returns the shard count planned with.
    fn plan_into_scratch(&mut self, active: usize) -> usize {
        let tiles = self.array.tile_count();
        let Fabric {
            queue_capacity,
            neighbors,
            networks,
            stepping,
            exec,
            scratch,
            ..
        } = self;
        let ctx = PlanCtx {
            queue_capacity: *queue_capacity,
            neighbors,
            networks,
        };
        match stepping {
            Stepping::Dense => {
                let pool = exec.pool().expect("dense single-shard ticks are fused");
                let shards = pool.threads();
                scratch.reset_shards(shards);
                band_ranges_into(tiles, shards, &mut scratch.bands[0]);
                let bands = &scratch.bands[0];
                pool.run_mut(&mut scratch.shard_plans[..shards], |shard, out| {
                    ctx.plan_band_into(bands[shard].clone(), out)
                });
                shards
            }
            Stepping::Sparse | Stepping::Wheel => {
                let shards = exec.shards_for(active);
                debug_assert!(shards > 1, "single-shard sparse ticks are fused");
                scratch.reset_shards(shards);
                // Shard each network's wake list independently;
                // concatenating shard outputs per network restores the
                // ascending tile order of the dense walk.
                band_ranges_into(ctx.networks[0].wake.len(), shards, &mut scratch.bands[0]);
                band_ranges_into(ctx.networks[1].wake.len(), shards, &mut scratch.bands[1]);
                let bands = &scratch.bands;
                exec.run_mut(&mut scratch.shard_plans[..shards], |shard, out| {
                    ctx.plan_wake_slices_into(
                        [
                            &ctx.networks[0].wake[bands[0][shard].clone()],
                            &ctx.networks[1].wake[bands[1][shard].clone()],
                        ],
                        out,
                    )
                });
                shards
            }
        }
    }

    /// The two-pass apply phase: commits the planned moves of the first
    /// `shards` scratch buffers sequentially. Bands are concatenated in
    /// tile order, so this replays the canonical sequential
    /// `(network, tile, out_port)` walk.
    fn apply_scratch(&mut self, shards: usize) {
        let tick = self.ticks;
        let shard_plans = std::mem::take(&mut self.scratch.shard_plans);
        for net_idx in 0..2 {
            for band_plan in &shard_plans[..shards] {
                for mv in &band_plan[net_idx] {
                    match *mv {
                        PlannedMove::Eject { tile_idx, in_port } => {
                            let network = &mut self.networks[net_idx];
                            let entry = network.pop(tile_idx, in_port, tick);
                            network.routers[tile_idx].rr[LOCAL] = ((in_port + 1) % 5) as u8;
                            self.scratch.ejected.push(entry);
                        }
                        PlannedMove::Forward {
                            tile_idx,
                            in_port,
                            out_port,
                            nb_idx,
                            in_side,
                        } => {
                            let network = &mut self.networks[net_idx];
                            let entry = network.pop(tile_idx, in_port, tick);
                            network.routers[tile_idx].rr[out_port] = ((in_port + 1) % 5) as u8;
                            // Link stats land in `commit_arrivals`, which
                            // touches the same cache lines anyway.
                            self.scratch.arrivals.push((
                                net_idx as u8,
                                nb_idx as u32,
                                in_side as u8,
                                entry.bumped(),
                            ));
                        }
                        PlannedMove::Stall { tile_idx, out_port } => {
                            self.links[net_idx][tile_idx][out_port].stall_cycles += 1;
                        }
                    }
                }
            }
        }
        self.scratch.shard_plans = shard_plans;
        self.commit_arrivals();
    }

    /// The fused single-pass walk of one network: plans each occupied
    /// tile against reconstructed pre-cycle state and applies its grants
    /// immediately, staging arrivals until the pass completes. See the
    /// module docs for the bit-identity argument.
    fn fused_walk(&mut self, net_idx: usize) {
        match self.stepping {
            Stepping::Dense => {
                let cols = self.networks[net_idx].mask_cols;
                if cols == 0 {
                    for tile_idx in 0..self.array.tile_count() {
                        self.fuse_tile(net_idx, tile_idx);
                    }
                } else {
                    // Copy each row's mask before walking it: the walk
                    // only clears bits of the tile it is visiting (pops
                    // at that tile), and pushes are staged, so the copy
                    // is exactly the pre-cycle occupancy the two-pass
                    // plan would read.
                    for row in 0..self.networks[net_idx].row_mask.len() {
                        let base = row * cols;
                        let mut bits = self.networks[net_idx].row_mask[row];
                        while bits != 0 {
                            let col = bits.trailing_zeros() as usize;
                            bits &= bits - 1;
                            self.fuse_tile(net_idx, base + col);
                        }
                    }
                }
            }
            Stepping::Sparse | Stepping::Wheel => {
                // The wake list is pruned and sorted; pops never touch
                // it and pushes are staged, so it is stable for the walk
                // (taken and restored around the borrow).
                let wake = std::mem::take(&mut self.networks[net_idx].wake);
                for &tile_idx in &wake {
                    self.fuse_tile(net_idx, tile_idx);
                }
                self.networks[net_idx].wake = wake;
            }
        }
        self.commit_arrivals();
    }

    /// Plans and applies one tile on one network inside a fused pass.
    fn fuse_tile(&mut self, net_idx: usize, tile_idx: usize) {
        let tick = self.ticks;
        let Fabric {
            queue_capacity,
            neighbors,
            networks,
            links,
            scratch,
            ..
        } = self;
        let network = &mut networks[net_idx];
        // Snapshot the head routes before any of this tile's own pops
        // refresh them — the pre-cycle state the plan phase reads.
        let head_out = network.routers[tile_idx].head_out;
        let mut want = [0u8; 5];
        for (in_port, &out) in head_out.iter().enumerate() {
            if out != EMPTY_HEAD {
                want[out as usize] |= 1 << in_port;
            }
        }
        // `out_port` indexes `rr`/`links` too, not just DIRECTIONS.
        #[allow(clippy::needless_range_loop)]
        for out_port in 0..5 {
            let contenders = u32::from(want[out_port]);
            if contenders == 0 {
                continue;
            }
            let start = usize::from(network.routers[tile_idx].rr[out_port]);
            let rotated = ((contenders >> start) | (contenders << (5 - start))) & 0x1f;
            let in_port = (start + rotated.trailing_zeros() as usize) % 5;
            if out_port == LOCAL {
                let entry = network.pop(tile_idx, in_port, tick);
                network.routers[tile_idx].rr[LOCAL] = ((in_port + 1) % 5) as u8;
                scratch.ejected.push(entry);
                continue;
            }
            let nb_idx = neighbors[tile_idx][out_port];
            debug_assert_ne!(nb_idx, NO_NEIGHBOR, "DoR never routes off the array");
            let nb_idx = nb_idx as usize;
            let in_side = OPPOSITE[out_port];
            // Pre-cycle occupancy of the downstream FIFO: it pops at
            // most once per cycle (stamped), and its arrivals are still
            // staged, so adding the pop back reconstructs the length
            // the plan phase would have read. One cache line: the
            // neighbour's length mirror and pop stamp share a `Router`.
            let nb_router = &network.routers[nb_idx];
            let pre_len = usize::from(nb_router.link_len[in_side])
                + usize::from(nb_router.popped_at[in_side] == tick);
            if pre_len < *queue_capacity {
                let entry = network.pop(tile_idx, in_port, tick);
                network.routers[tile_idx].rr[out_port] = ((in_port + 1) % 5) as u8;
                // Link stats land in `commit_arrivals`, which touches
                // the same cache lines anyway.
                scratch.arrivals.push((
                    net_idx as u8,
                    nb_idx as u32,
                    in_side as u8,
                    entry.bumped(),
                ));
            } else {
                links[net_idx][tile_idx][out_port].stall_cycles += 1;
            }
        }
    }

    /// Pushes the staged arrivals into their destination FIFOs in order,
    /// attributing peak occupancy to the upstream link that fed each.
    fn commit_arrivals(&mut self) {
        let Fabric {
            coords,
            neighbors,
            networks,
            links,
            scratch,
            link_traversals,
            ..
        } = self;
        *link_traversals += scratch.arrivals.len() as u64;
        for &(net, nb_idx, in_side, entry) in &scratch.arrivals {
            let (net, tile, port) = (net as usize, nb_idx as usize, in_side as usize);
            let network = &mut networks[net];
            network.push(
                coords[tile],
                tile,
                port,
                entry.slot(),
                entry.target(),
                entry.net(),
                entry.hops(),
            );
            // `port` is the receiving side, which faces back toward the
            // sender; attribute the traversal and the peak to the
            // upstream link feeding it.
            let occupancy = network.queues[tile][port].len();
            let upstream = neighbors[tile][port];
            debug_assert_ne!(upstream, NO_NEIGHBOR, "arrival came from a neighbour");
            let stats = &mut links[net][upstream as usize][OPPOSITE[port]];
            stats.forwarded += 1;
            stats.peak_occupancy = stats.peak_occupancy.max(occupancy);
        }
        scratch.arrivals.clear();
    }

    /// Resolves this tick's ejected slots in order: relay packets
    /// reaching their intermediate tile start their second leg (the via
    /// tile re-injects them locally, spending its own cycles — the
    /// paper's software relay workaround); everything else is delivered.
    fn resolve_ejected(&mut self, delivered: &mut Vec<FabricPacket>) {
        let mut ejected = std::mem::take(&mut self.scratch.ejected);
        for &entry in &ejected {
            let slot = entry.slot();
            if matches!(self.arena.choice(slot), NetworkChoice::Relay { .. })
                && self.arena.leg(slot) == 0
            {
                self.arena.set_leg(slot, 1);
                self.relay_forwards += 1;
                let NetworkChoice::Relay { via, .. } = self.arena.choice(slot) else {
                    unreachable!()
                };
                let net = self.arena.network_of(slot) as usize;
                let idx = self.array.index_of(via);
                let Fabric {
                    coords,
                    networks,
                    arena,
                    ..
                } = &mut *self;
                networks[net].push(
                    coords[idx],
                    idx,
                    LOCAL,
                    slot,
                    arena.leg_target(slot),
                    arena.network_of(slot),
                    entry.hops(),
                );
            } else {
                // The fabric tracks hop counts in its ring entries (the
                // arena column holds the count as of injection), so the
                // delivered packet takes the entry's value.
                let mut packet = self.arena.take(slot);
                packet.hops = entry.hops();
                delivered.push(packet);
            }
        }
        ejected.clear();
        self.scratch.ejected = ejected;
    }

    /// Fingerprints every router's current state into the journal's net
    /// lanes at window boundary `cycle` (no-op when digests are off).
    fn record_net_lanes(&mut self, cycle: u64) {
        let tiles = self.array.tile_count();
        let Fabric {
            networks,
            journal,
            arena,
            ..
        } = self;
        let Some(journal) = journal.as_mut() else {
            return;
        };
        for (net_idx, network) in networks.iter().enumerate() {
            for tile in 0..tiles {
                let mut h = Fnv1a::new();
                for port in 0..5 {
                    h.write_u32(network.queues[tile][port].len() as u32);
                    for entry in network.queues[tile][port].iter() {
                        let slot = entry.slot();
                        h.write_u64(arena.id(slot));
                        h.write_u8(arena.leg(slot));
                        h.write_u32(entry.hops());
                    }
                    h.write_u8(network.routers[tile].rr[port]);
                }
                journal.record(
                    cycle,
                    LaneId::Net {
                        net: net_idx as u8,
                        tile: tile as u32,
                    },
                    h.finish(),
                );
            }
        }
    }

    /// Jumps the clock forward `cycles` cycles across a window in which
    /// the fabric is provably inert (nothing queued anywhere), replaying
    /// the per-cycle bookkeeping in bulk so every artefact stays
    /// byte-identical to having ticked the window densely:
    ///
    /// - each skipped tick would have sampled an empty active set, so
    ///   the histogram takes `cycles` zeros in O(1);
    /// - each gauge-sample boundary inside the window records the same
    ///   four zeros the dense tick would read off empty queues;
    /// - every digest boundary inside the window hashes the same empty
    ///   routers, so recording the *first* one reproduces the dense
    ///   journal — later boundaries dedup to nothing.
    ///
    /// Ticks are not executed, so [`Fabric::ticks_executed`] does not
    /// advance — the counter the O(events)-termination tests watch.
    ///
    /// Callers (the wheel-stepping drivers) must only skip windows with
    /// no in-flight packets; this is debug-asserted.
    pub fn skip_cycles(&mut self, cycles: u64) {
        if cycles == 0 {
            return;
        }
        debug_assert_eq!(self.in_flight(), 0, "only an empty fabric may skip");
        for network in &mut self.networks {
            network.prune_wake();
            debug_assert!(network.wake.is_empty());
        }
        let start = self.cycle;
        self.cycle += cycles;
        self.active_tiles.record_n(0, cycles);
        if self.sample_every != 0 {
            let every = self.sample_every;
            let mut boundary = (start / every + 1) * every;
            while boundary <= self.cycle {
                if self.samples[0].1.wants(boundary) {
                    for (_, series) in &mut self.samples {
                        series.record(boundary, 0.0);
                    }
                }
                boundary += every;
            }
        }
        if let Some(every) = self.journal.as_ref().map(|j| j.every()) {
            if let Some(periods) = start.checked_div(every) {
                let first = (periods + 1) * every;
                if first <= self.cycle {
                    self.record_net_lanes(first);
                }
            }
        }
    }

    /// Ticks actually executed so far — unlike [`Fabric::cycle`], cycles
    /// jumped by [`Fabric::skip_cycles`] do not count. The ratio
    /// `cycle / ticks_executed` is the event-wheel skip leverage.
    pub fn ticks_executed(&self) -> u64 {
        self.ticks
    }

    /// Ticks until the fabric is empty, returning every endpoint delivery.
    ///
    /// # Panics
    ///
    /// Panics if the network fails to drain (a deadlock), which the
    /// dual-DoR design guarantees cannot happen — the panic is the
    /// regression alarm for that property.
    pub fn drain(&mut self) -> Vec<FabricPacket> {
        let mut out = Vec::new();
        let mut batch = Vec::new();
        let mut idle_cycles = 0u64;
        while self.in_flight() > 0 {
            let before = self.in_flight();
            self.tick_into(&mut batch);
            out.extend_from_slice(&batch);
            if self.in_flight() == before {
                idle_cycles += 1;
                assert!(
                    idle_cycles < 10_000,
                    "network failed to drain: deadlock with {} packets in flight",
                    self.in_flight()
                );
            } else {
                idle_cycles = 0;
            }
        }
        out
    }

    /// Counters for the link leaving `tile` in `dir` on `network`.
    pub fn link_stats(&self, network: NetworkKind, tile: TileCoord, dir: Direction) -> LinkStats {
        self.links[network as usize][self.array.index_of(tile)][dir.index()]
    }

    /// Traversal count of the link leaving `tile` in direction `dir` on
    /// the given network — the congestion heat map.
    pub fn link_utilization(&self, network: NetworkKind, tile: TileCoord, dir: Direction) -> u64 {
        self.link_stats(network, tile, dir).forwarded
    }

    /// The most-used link: `(network, tile, direction, traversals)`.
    ///
    /// Ties break deterministically: lowest tile index first, then lowest
    /// direction index (N, S, E, W order), then the Xy network — so equal
    /// heat maps always report the same link regardless of iteration order.
    pub fn hottest_link(&self) -> Option<(NetworkKind, TileCoord, Direction, u64)> {
        // Key: forwarded count descending, then (tile, direction, network)
        // ascending.
        let mut best: Option<(u64, usize, usize, usize)> = None;
        for (n, per_net) in self.links.iter().enumerate() {
            for (idx, dirs) in per_net.iter().enumerate() {
                for (d, stats) in dirs.iter().enumerate() {
                    if stats.forwarded == 0 {
                        continue;
                    }
                    let better = match best {
                        None => true,
                        Some((count, tile, dir, net)) => {
                            stats.forwarded > count
                                || (stats.forwarded == count && (idx, d, n) < (tile, dir, net))
                        }
                    };
                    if better {
                        best = Some((stats.forwarded, idx, d, n));
                    }
                }
            }
        }
        best.map(|(count, idx, d, n)| {
            let network = if n == 0 {
                NetworkKind::Xy
            } else {
                NetworkKind::Yx
            };
            (network, self.array.coord_of(idx), DIRECTIONS[d], count)
        })
    }

    /// Row-major per-tile heat map: total packets forwarded out of each
    /// tile, summed over both networks and all four directions.
    pub fn utilization_heatmap(&self) -> Vec<f64> {
        let tiles = self.array.tile_count();
        let mut map = vec![0.0; tiles];
        for per_net in &self.links {
            for (idx, dirs) in per_net.iter().enumerate() {
                map[idx] += dirs.iter().map(|s| s.forwarded as f64).sum::<f64>();
            }
        }
        map
    }

    /// Emits the fabric's aggregate metrics into `sink`: traversal and
    /// relay counters, per-link forwarded/stall histograms, peak FIFO
    /// occupancy, and the per-tile utilization heat map as a series.
    pub fn export_metrics(&self, sink: &mut dyn Sink) {
        sink.counter_add("fabric.link_traversals", self.link_traversals);
        sink.counter_add("fabric.relay_forwards", self.relay_forwards);
        sink.counter_add("fabric.stall_cycles", self.total_stall_cycles());
        sink.gauge_set(
            "fabric.peak_link_occupancy",
            self.peak_link_occupancy() as f64,
        );
        sink.gauge_set("fabric.cycles", self.cycle as f64);
        // Active-set occupancy: sampled per tick in both stepping modes
        // from queue state alone, so these values are identical across
        // modes and thread counts (the CI smoke gate byte-compares them).
        sink.gauge_set("fabric.active_tiles_mean", self.active_tiles.mean());
        sink.gauge_set("fabric.active_tiles_peak", self.active_tiles.max() as f64);
        sink.histogram_merge("fabric.active_tiles", &self.active_tiles);
        for per_net in &self.links {
            for dirs in per_net {
                for stats in dirs {
                    sink.histogram_record("fabric.link.forwarded", stats.forwarded);
                    sink.histogram_record("fabric.link.stall_cycles", stats.stall_cycles);
                }
            }
        }
        sink.series_set("fabric.tile_heatmap", &self.utilization_heatmap());
        for (name, series) in &self.samples {
            if !series.is_empty() {
                sink.timeseries_merge(name, series);
            }
        }
    }

    /// Total link traversals (one per packet per hop).
    pub fn link_traversals(&self) -> u64 {
        self.link_traversals
    }

    /// Relay re-injections performed by intermediate tiles.
    pub fn relay_forwards(&self) -> u64 {
        self.relay_forwards
    }

    /// Total cycles any link spent stalled on a full downstream FIFO.
    pub fn total_stall_cycles(&self) -> u64 {
        self.links
            .iter()
            .flat_map(|per_net| per_net.iter())
            .flat_map(|dirs| dirs.iter())
            .map(|s| s.stall_cycles)
            .sum()
    }

    /// Per-tick active-set sizes sampled so far (awake tiles summed over
    /// both networks) — a pure function of queue state, identical in
    /// either stepping mode.
    pub fn active_tiles(&self) -> &Histogram {
        &self.active_tiles
    }

    /// The highest occupancy any link input FIFO ever reached.
    pub fn peak_link_occupancy(&self) -> usize {
        self.links
            .iter()
            .flat_map(|per_net| per_net.iter())
            .flat_map(|dirs| dirs.iter())
            .map(|s| s.peak_occupancy)
            .max()
            .unwrap_or(0)
    }
}

/// [`DIRECTIONS`] index of adjacent `nb` relative to `tile` — the inverse
/// of `Direction::offset`, branch-direct so the FIFO head refresh does
/// not scan the direction table.
#[inline]
fn direction_between(tile: TileCoord, nb: TileCoord) -> usize {
    if nb.y < tile.y {
        0 // North
    } else if nb.y > tile.y {
        1 // South
    } else if nb.x > tile.x {
        2 // East
    } else {
        3 // West
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn direct_req(fabric: &mut Fabric, src: (u16, u16), dst: (u16, u16)) -> FabricPacket {
        let id = fabric.allocate_id();
        FabricPacket::request(
            id,
            TileCoord::new(src.0, src.1),
            TileCoord::new(dst.0, dst.1),
            NetworkChoice::Direct(NetworkKind::Xy),
            fabric.cycle(),
        )
    }

    #[test]
    fn single_packet_takes_manhattan_plus_queueing_cycles() {
        let mut fabric = Fabric::new(TileArray::new(8, 8), 4);
        let packet = direct_req(&mut fabric, (0, 0), (5, 3));
        assert!(fabric.inject(packet));
        let delivered = fabric.drain();
        assert_eq!(delivered.len(), 1);
        let p = delivered[0];
        assert_eq!(p.hops, 8);
        // 1 cycle out of the local queue per hop, plus local ejection.
        assert!(
            fabric.cycle() >= 9 && fabric.cycle() <= 12,
            "{}",
            fabric.cycle()
        );
        assert_eq!(fabric.link_traversals(), 8);
        assert_eq!(fabric.in_flight(), 0);
    }

    #[test]
    fn ids_advance_even_under_backpressure() {
        let mut fabric = Fabric::new(TileArray::new(4, 4), 1);
        // Local queue cap is queue_capacity * 4 = 4.
        let mut accepted = 0;
        for _ in 0..10 {
            let p = direct_req(&mut fabric, (0, 0), (3, 0));
            if fabric.inject(p) {
                accepted += 1;
            }
        }
        assert_eq!(accepted, 4);
        assert_eq!(fabric.allocate_id(), 10);
        let delivered = fabric.drain();
        assert_eq!(delivered.len(), 4);
    }

    #[test]
    fn relay_packets_reinject_at_the_via_tile() {
        let mut fabric = Fabric::new(TileArray::new(8, 8), 4);
        let id = fabric.allocate_id();
        let choice = NetworkChoice::Relay {
            via: TileCoord::new(3, 5),
            first: NetworkKind::Xy,
            second: NetworkKind::Yx,
        };
        let packet = FabricPacket::request(
            id,
            TileCoord::new(0, 3),
            TileCoord::new(7, 3),
            choice,
            fabric.cycle(),
        );
        assert!(fabric.inject(packet));
        let delivered = fabric.drain();
        assert_eq!(delivered.len(), 1);
        assert_eq!(delivered[0].dst, TileCoord::new(7, 3));
        assert_eq!(fabric.relay_forwards(), 1);
    }

    #[test]
    fn stall_cycles_appear_under_hotspot_pressure() {
        let mut fabric = Fabric::new(TileArray::new(8, 8), 2);
        // Everyone floods tile (4,4) at once.
        for _ in 0..3 {
            for x in 0..8u16 {
                for y in 0..8u16 {
                    if (x, y) == (4, 4) {
                        continue;
                    }
                    let p = direct_req(&mut fabric, (x, y), (4, 4));
                    fabric.inject(p);
                }
            }
        }
        let delivered = fabric.drain();
        assert!(!delivered.is_empty());
        assert!(fabric.total_stall_cycles() > 0, "no contention recorded");
        assert!(fabric.peak_link_occupancy() >= 2);
    }

    #[test]
    fn hottest_link_breaks_ties_toward_lowest_tile_then_direction() {
        let mut fabric = Fabric::new(TileArray::new(4, 4), 4);
        // Two disjoint single-hop flows with identical traversal counts:
        // (2,0)→(3,0) and (0,1)→(1,1). Equal heat, so the tie must break
        // to the lower row-major tile index, (2,0), regardless of network
        // scan order.
        for _ in 0..3 {
            let a = direct_req(&mut fabric, (2, 0), (3, 0));
            let b = direct_req(&mut fabric, (0, 1), (1, 1));
            assert!(fabric.inject(a));
            assert!(fabric.inject(b));
            fabric.drain();
        }
        let (net, tile, dir, count) = fabric.hottest_link().expect("traffic ran");
        assert_eq!(count, 3);
        assert_eq!(tile, TileCoord::new(2, 0));
        assert_eq!(dir, Direction::East);
        assert_eq!(net, NetworkKind::Xy);
    }

    #[test]
    fn ticks_are_bit_identical_across_thread_counts() {
        // Flood an 8x8 fabric with a hotspot plus background flows, then
        // compare every delivery, the cycle count, and the per-link
        // counters against the single-threaded run.
        let run = |threads: usize| {
            let mut fabric = Fabric::new(TileArray::new(8, 8), 2);
            fabric.set_threads(threads);
            assert_eq!(fabric.threads(), threads.max(1));
            for _ in 0..3 {
                for x in 0..8u16 {
                    for y in 0..8u16 {
                        if (x, y) == (4, 4) {
                            continue;
                        }
                        let p = direct_req(&mut fabric, (x, y), (4, 4));
                        fabric.inject(p);
                        let q = direct_req(&mut fabric, (x, y), (y, x));
                        fabric.inject(q);
                    }
                }
            }
            let delivered: Vec<(u64, u32, u64)> = fabric
                .drain()
                .into_iter()
                .map(|p| (p.id, p.hops, p.injected_at))
                .collect();
            (
                delivered,
                fabric.cycle(),
                fabric.link_traversals(),
                fabric.total_stall_cycles(),
                fabric.peak_link_occupancy(),
                fabric.utilization_heatmap(),
            )
        };
        let baseline = run(1);
        for threads in [2, 3, 5, 8] {
            assert_eq!(run(threads), baseline, "threads = {threads}");
        }
    }

    #[test]
    fn sparse_stepping_is_bit_identical_to_dense() {
        // Same hotspot-plus-background flood as the thread-count test,
        // compared across the dense/sparse × thread-count matrix. The
        // active-set histogram must match too: it is sampled from queue
        // state, not from the scheduler's own work list.
        let run = |stepping: Stepping, threads: usize| {
            let mut fabric = Fabric::new(TileArray::new(8, 8), 2);
            fabric.set_threads(threads);
            fabric.set_stepping(stepping);
            for _ in 0..3 {
                for x in 0..8u16 {
                    for y in 0..8u16 {
                        if (x, y) == (4, 4) {
                            continue;
                        }
                        let p = direct_req(&mut fabric, (x, y), (4, 4));
                        fabric.inject(p);
                        let q = direct_req(&mut fabric, (x, y), (y, x));
                        fabric.inject(q);
                    }
                }
            }
            let delivered: Vec<(u64, u32, u64)> = fabric
                .drain()
                .into_iter()
                .map(|p| (p.id, p.hops, p.injected_at))
                .collect();
            (
                delivered,
                fabric.cycle(),
                fabric.link_traversals(),
                fabric.total_stall_cycles(),
                fabric.peak_link_occupancy(),
                fabric.utilization_heatmap(),
                fabric.active_tiles().clone(),
            )
        };
        let baseline = run(Stepping::Dense, 1);
        assert!(baseline.6.count() > 0, "active-set samples recorded");
        for threads in [1, 2, 8] {
            assert_eq!(
                run(Stepping::Sparse, threads),
                baseline,
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn fused_dense_matches_the_pooled_two_pass_sweep() {
        // threads == 1 takes the fused single pass; a pool forces the
        // two-pass plan/apply split. Same flood, byte-identical results.
        let run = |threads: usize| {
            let mut fabric = Fabric::new(TileArray::new(8, 8), 2);
            fabric.set_stepping(Stepping::Dense);
            fabric.set_threads(threads);
            for _ in 0..3 {
                for x in 0..8u16 {
                    for y in 0..8u16 {
                        if (x, y) == (4, 4) {
                            continue;
                        }
                        let p = direct_req(&mut fabric, (x, y), (4, 4));
                        fabric.inject(p);
                        let q = direct_req(&mut fabric, (x, y), (y, x));
                        fabric.inject(q);
                    }
                }
            }
            let delivered: Vec<(u64, u32, u64)> = fabric
                .drain()
                .into_iter()
                .map(|p| (p.id, p.hops, p.injected_at))
                .collect();
            (
                delivered,
                fabric.cycle(),
                fabric.link_traversals(),
                fabric.total_stall_cycles(),
                fabric.peak_link_occupancy(),
                fabric.utilization_heatmap(),
            )
        };
        let fused = run(1);
        for threads in [2, 8] {
            assert_eq!(run(threads), fused, "threads = {threads}");
        }
    }

    #[test]
    fn fused_sparse_matches_the_sharded_two_pass_walk() {
        // A 32x32 all-tiles flood keeps the active set above the banding
        // threshold (64 x threads), so the threaded run genuinely shards
        // its wake lists while threads == 1 takes the fused pass.
        let run = |threads: usize| {
            let mut fabric = Fabric::new(TileArray::new(32, 32), 2);
            fabric.set_threads(threads);
            for x in 0..32u16 {
                for y in 0..32u16 {
                    let p = direct_req(&mut fabric, (x, y), (31 - x, 31 - y));
                    fabric.inject(p);
                    let q = direct_req(&mut fabric, (x, y), (y, x));
                    fabric.inject(q);
                }
            }
            let delivered: Vec<(u64, u32, u64)> = fabric
                .drain()
                .into_iter()
                .map(|p| (p.id, p.hops, p.injected_at))
                .collect();
            (
                delivered,
                fabric.cycle(),
                fabric.link_traversals(),
                fabric.total_stall_cycles(),
                fabric.peak_link_occupancy(),
                fabric.utilization_heatmap(),
            )
        };
        let fused = run(1);
        assert_eq!(run(8), fused);
    }

    #[test]
    fn drained_fabric_releases_every_arena_slot() {
        let mut fabric = Fabric::new(TileArray::new(8, 8), 2);
        for round in 0..4 {
            for x in 0..8u16 {
                for y in 0..8u16 {
                    let p = direct_req(&mut fabric, (x, y), (7 - x, 7 - y));
                    fabric.inject(p);
                }
            }
            assert!(fabric.arena_live() > 0);
            fabric.drain();
            assert_eq!(fabric.arena_live(), 0, "round {round} leaked slots");
        }
        // Recycling bounds the footprint at one round's peak in flight.
        let footprint = fabric.arena_slots();
        for _ in 0..4 {
            for x in 0..8u16 {
                for y in 0..8u16 {
                    let p = direct_req(&mut fabric, (x, y), (7 - x, 7 - y));
                    fabric.inject(p);
                }
            }
            fabric.drain();
        }
        assert_eq!(
            fabric.arena_slots(),
            footprint,
            "steady churn grew the arena"
        );
    }

    #[test]
    fn idle_tiles_cost_nothing_in_sparse_mode() {
        // One packet on a big array: after the first prune, only the
        // tiles along the path are ever awake.
        let mut fabric = Fabric::new(TileArray::new(16, 16), 4);
        assert_eq!(fabric.executor(), "sparse");
        let p = direct_req(&mut fabric, (0, 0), (3, 0));
        assert!(fabric.inject(p));
        let delivered = fabric.drain();
        assert_eq!(delivered.len(), 1);
        let active = fabric.active_tiles();
        assert_eq!(active.max(), 1, "a single flit wakes one tile per tick");
        assert_eq!(fabric.in_flight(), 0);
    }

    #[test]
    fn hottest_link_is_none_on_an_idle_fabric() {
        let fabric = Fabric::new(TileArray::new(4, 4), 4);
        assert!(fabric.hottest_link().is_none());
    }

    #[test]
    fn export_metrics_and_delivery_spans_reach_the_sink() {
        use wsp_telemetry::SharedRecorder;

        let recorder = SharedRecorder::new();
        let mut fabric = Fabric::new(TileArray::new(4, 4), 4);
        fabric.set_sink(recorder.boxed());
        let p = direct_req(&mut fabric, (0, 0), (3, 3));
        assert!(fabric.inject(p));
        fabric.drain();

        let mut shared = recorder.clone();
        fabric.export_metrics(&mut shared);
        recorder.with(|r| {
            assert_eq!(r.tracer.span_count("fabric"), 1);
            assert_eq!(r.registry.counter("fabric.link_traversals"), 6);
            let heat = r.registry.series("fabric.tile_heatmap").expect("heatmap");
            assert_eq!(heat.len(), 16);
            assert_eq!(heat.iter().sum::<f64>(), 6.0);
        });
    }

    #[test]
    #[should_panic(expected = "disconnected packets are never injected")]
    fn disconnected_requests_are_rejected_at_construction() {
        let _ = FabricPacket::request(
            0,
            TileCoord::new(0, 0),
            TileCoord::new(1, 1),
            NetworkChoice::Disconnected,
            0,
        );
    }
}
