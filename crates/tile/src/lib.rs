//! Functional model of one tile: the compute chiplet and its memory
//! chiplet (Sec. II, Fig. 1).
//!
//! A tile pairs a *compute chiplet* — 14 independently programmable
//! Cortex-M3-class cores with 64 KB of private SRAM each, memory
//! controllers, and the network routers — with a *memory chiplet* holding
//! five 128 KB SRAM banks (four globally addressable, one tile-local), all
//! joined by an intra-tile crossbar (the ARM BusMatrix IP in the silicon).
//!
//! The model is executable: [`CoreSim`] interprets a small load/store ISA
//! ([`isa`]) cycle by cycle, private loads hit the core's own SRAM, and
//! accesses to the shared address space arbitrate through the
//! [`Crossbar`] onto the [`MemoryChiplet`] banks — one access per bank per
//! cycle, which is exactly where the paper's 6.144 TB/s aggregate
//! shared-memory bandwidth figure comes from (1024 tiles × 5 banks ×
//! 32 bit × 300 MHz).
//!
//! # Examples
//!
//! ```
//! use wsp_tile::isa::{Program, Reg};
//! use wsp_tile::Tile;
//!
//! // Store 7 × 6 into shared memory from core 0.
//! let program = Program::builder()
//!     .ldi(Reg::R1, 7)
//!     .ldi(Reg::R2, 6)
//!     .mul(Reg::R3, Reg::R1, Reg::R2)
//!     .ldi(Reg::R4, wsp_tile::GLOBAL_BASE)
//!     .st(Reg::R3, Reg::R4, 0)
//!     .halt()
//!     .build()?;
//! let mut tile = Tile::new();
//! tile.load_program(0, &program)?;
//! tile.run_until_halt(10_000)?;
//! assert_eq!(tile.read_shared_word(0)?, 42);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod core;
pub mod crossbar;
pub mod isa;
pub mod memory;
pub mod memory_model;
mod tile;

pub use crate::core::{BusAccess, BusGrant, CoreSim, CoreState, PendingAccess, StepError};
pub use crate::crossbar::Crossbar;
pub use crate::memory::{AccessMemoryError, MemoryChiplet};
pub use crate::memory_model::{
    BankedRowBuffer, FixedLatency, MemTiming, MemoryModel, MemoryModelKind, PAddr, Tlb, VAddr,
};
pub use crate::tile::{LoadProgramError, RunTileError, Tile, TileStats};

/// Base of the globally shared address space as seen by a core. Addresses
/// below this go to the core's private SRAM; at or above, to the shared
/// banks via the crossbar.
pub const GLOBAL_BASE: u32 = 0x8000_0000;

/// Number of cores on the compute chiplet (Table I: 14 per tile).
pub const CORES_PER_TILE: usize = 14;

/// Private SRAM per core, in bytes (Table I: 64 KB).
pub const PRIVATE_SRAM_BYTES: usize = 64 * 1024;
