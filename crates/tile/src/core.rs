//! The per-core interpreter: one Cortex-M3-class core with 64 KB of
//! private SRAM.
//!
//! Each core retires one instruction per cycle; loads and stores to the
//! private SRAM complete in that cycle, while accesses at or above
//! [`crate::GLOBAL_BASE`] are presented to the tile's crossbar and may
//! stall for arbitration — the core re-issues the access every cycle until
//! granted, exactly like a blocked AHB master.

use std::error::Error;
use std::fmt;

use crate::isa::{Instr, Program, Reg};
use crate::memory::AccessMemoryError;
use crate::{GLOBAL_BASE, PRIVATE_SRAM_BYTES};

/// A shared-memory access presented to the tile interconnect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BusAccess {
    /// Word load from a shared address.
    Load {
        /// Byte address (≥ [`GLOBAL_BASE`]).
        addr: u32,
    },
    /// Word store to a shared address.
    Store {
        /// Byte address (≥ [`GLOBAL_BASE`]).
        addr: u32,
        /// The word to write.
        value: u32,
    },
    /// Atomic fetch-and-add on a shared address; the grant carries the
    /// *old* value.
    AmoAdd {
        /// Byte address (≥ [`GLOBAL_BASE`]).
        addr: u32,
        /// The addend.
        value: u32,
    },
}

/// Outcome of presenting a [`BusAccess`] this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BusGrant {
    /// Access performed; for loads, carries the value read.
    Granted(u32),
    /// Arbitration lost this cycle — the core stalls and retries.
    Stalled,
}

/// Progress of one core's outstanding shared-memory access, tracked by
/// whatever agent services the bus on the core's behalf (the tile for
/// local banks, the machine's network interface for remote tiles). The
/// core itself just re-issues the access and sees [`BusGrant::Stalled`]
/// until the slot reaches [`PendingAccess::Ready`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PendingAccess {
    /// The request is in the network; the core stalls until the response
    /// packet is actually delivered.
    InFlight {
        /// Byte address of the stalled access.
        addr: u32,
        /// Cycle the access first issued, for end-to-end latency
        /// accounting.
        issued_at: u64,
    },
    /// Analytic-model timer: the access completes once the machine clock
    /// reaches `ready_at`, independent of network load.
    WaitUntil {
        /// Byte address of the stalled access.
        addr: u32,
        /// Cycle the access first issued.
        issued_at: u64,
        /// Cycle the modelled round trip completes.
        ready_at: u64,
    },
    /// The response has arrived carrying the access result; the core is
    /// granted on its next bus attempt.
    Ready {
        /// Byte address of the completed access.
        addr: u32,
        /// Cycle the access first issued.
        issued_at: u64,
        /// The grant payload (load/AMO result; 0 for stores).
        value: u32,
    },
}

impl PendingAccess {
    /// The byte address the access targets.
    pub fn addr(&self) -> u32 {
        match *self {
            PendingAccess::InFlight { addr, .. }
            | PendingAccess::WaitUntil { addr, .. }
            | PendingAccess::Ready { addr, .. } => addr,
        }
    }

    /// The cycle the access first issued.
    pub fn issued_at(&self) -> u64 {
        match *self {
            PendingAccess::InFlight { issued_at, .. }
            | PendingAccess::WaitUntil { issued_at, .. }
            | PendingAccess::Ready { issued_at, .. } => issued_at,
        }
    }
}

/// Execution state of a core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreState {
    /// Executing instructions.
    Running,
    /// Reached a `Halt`.
    Halted,
    /// Trapped on an error; see the `StepError` that reported it.
    Faulted,
}

/// Execution statistics of one core.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CoreStats {
    /// Cycles elapsed (including stall cycles).
    pub cycles: u64,
    /// Instructions retired.
    pub retired: u64,
    /// Cycles lost waiting for shared-memory arbitration.
    pub stall_cycles: u64,
    /// Shared-memory accesses completed.
    pub shared_accesses: u64,
}

/// One core of the compute chiplet.
///
/// # Examples
///
/// ```
/// use wsp_tile::isa::{Program, Reg};
/// use wsp_tile::{BusGrant, CoreSim, CoreState};
///
/// let program = Program::builder()
///     .ldi(Reg::R1, 20)
///     .ldi(Reg::R2, 22)
///     .add(Reg::R3, Reg::R1, Reg::R2)
///     .halt()
///     .build()?;
/// let mut core = CoreSim::new();
/// core.load_program(&program);
/// while core.state() == CoreState::Running {
///     core.step(|_| Ok(BusGrant::Stalled))?; // no shared accesses issued
/// }
/// assert_eq!(core.reg(Reg::R3), 42);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct CoreSim {
    regs: [u32; 16],
    pc: usize,
    program: Program,
    sram: Vec<u8>,
    state: CoreState,
    stats: CoreStats,
    /// Remaining cycles the pipeline is frozen by an already-performed
    /// shared access (the execute-then-stall idiom). The cycles were
    /// accounted up front by [`CoreSim::apply_stall_cycles`]; `step`
    /// only drains the freeze.
    stall_pending: u64,
}

impl CoreSim {
    /// Creates a core with zeroed registers and SRAM and an empty (halted)
    /// program.
    pub fn new() -> Self {
        CoreSim {
            regs: [0; 16],
            pc: 0,
            program: Program::builder().halt().build().expect("non-empty"),
            sram: vec![0; PRIVATE_SRAM_BYTES],
            state: CoreState::Halted,
            stats: CoreStats::default(),
            stall_pending: 0,
        }
    }

    /// Loads a program and resets pc/state (registers and SRAM persist, as
    /// they would across a JTAG reload).
    pub fn load_program(&mut self, program: &Program) {
        self.program = program.clone();
        self.pc = 0;
        self.state = CoreState::Running;
    }

    /// Current execution state.
    #[inline]
    pub fn state(&self) -> CoreState {
        self.state
    }

    /// Current program counter (instruction index, not a byte address).
    /// Exposed for architectural-state digests and debuggers.
    #[inline]
    pub fn pc(&self) -> usize {
        self.pc
    }

    /// Value of a register.
    #[inline]
    pub fn reg(&self, r: Reg) -> u32 {
        self.regs[r.index()]
    }

    /// Sets a register (used by loaders/tests to pass arguments).
    #[inline]
    pub fn set_reg(&mut self, r: Reg, value: u32) {
        self.regs[r.index()] = value;
    }

    /// Execution statistics so far.
    #[inline]
    pub fn stats(&self) -> CoreStats {
        self.stats
    }

    /// Credits `cycles` cycles in which this core was stepped but stalled
    /// on an outstanding shared-memory access, without re-executing the
    /// instruction. An activity-driven scheduler that skips a fully
    /// blocked tile replays the skipped span through this method: a
    /// blocked core's [`CoreSim::step`] does exactly one `cycles` and one
    /// `stall_cycles` increment per cycle and nothing else, so the replay
    /// is bit-identical to having stepped it.
    #[inline]
    pub fn absorb_stall_cycles(&mut self, cycles: u64) {
        debug_assert_eq!(self.state, CoreState::Running, "only running cores stall");
        self.stats.cycles += cycles;
        self.stats.stall_cycles += cycles;
    }

    /// Applies the stall a memory model returned for an access that
    /// already performed this cycle (the execute-then-stall idiom): the
    /// model mutated exactly once, so the whole cost is absorbed up
    /// front through [`CoreSim::absorb_stall_cycles`] and the pipeline
    /// stays frozen for the same number of subsequent [`CoreSim::step`]
    /// calls — without the access ever being re-presented.
    pub fn apply_stall_cycles(&mut self, cycles: u64) {
        if cycles == 0 || self.state != CoreState::Running {
            return;
        }
        self.absorb_stall_cycles(cycles);
        self.stall_pending += cycles;
    }

    /// Remaining frozen cycles from [`CoreSim::apply_stall_cycles`].
    #[inline]
    pub fn stall_pending(&self) -> u64 {
        self.stall_pending
    }

    /// Drains `cycles` of an armed freeze in bulk — the event-wheel skip
    /// path. A frozen [`CoreSim::step`] does exactly one `stall_pending`
    /// decrement and nothing else (cycles and stalls were accounted up
    /// front by [`CoreSim::apply_stall_cycles`]), so skipping a window of
    /// `cycles` frozen steps reduces to this single subtraction.
    #[inline]
    pub fn drain_stall_cycles(&mut self, cycles: u64) {
        debug_assert_eq!(self.state, CoreState::Running, "only running cores drain");
        debug_assert!(self.stall_pending >= cycles, "cannot drain past the freeze");
        self.stall_pending -= cycles;
    }

    /// Reads a word from private SRAM (for test setup / result readout).
    ///
    /// # Errors
    ///
    /// Returns an error for misaligned or out-of-range addresses.
    pub fn read_private_word(&self, addr: u32) -> Result<u32, AccessMemoryError> {
        check_private(addr)?;
        let i = addr as usize;
        Ok(u32::from_le_bytes(
            self.sram[i..i + 4].try_into().expect("4 bytes"),
        ))
    }

    /// Writes a word to private SRAM.
    ///
    /// # Errors
    ///
    /// Returns an error for misaligned or out-of-range addresses.
    pub fn write_private_word(&mut self, addr: u32, value: u32) -> Result<(), AccessMemoryError> {
        check_private(addr)?;
        let i = addr as usize;
        self.sram[i..i + 4].copy_from_slice(&value.to_le_bytes());
        Ok(())
    }

    /// Advances the core one cycle.
    ///
    /// `shared` is invoked when (and only when) the current instruction
    /// accesses an address at or above [`GLOBAL_BASE`]; returning
    /// [`BusGrant::Stalled`] keeps the core on the same instruction.
    ///
    /// # Errors
    ///
    /// Returns [`StepError`] on architectural faults (bad PC, misaligned
    /// or out-of-range addresses); the core transitions to
    /// [`CoreState::Faulted`] and further steps are no-ops.
    pub fn step<F>(&mut self, shared: F) -> Result<CoreState, StepError>
    where
        F: FnOnce(BusAccess) -> Result<BusGrant, AccessMemoryError>,
    {
        if self.state != CoreState::Running {
            return Ok(self.state);
        }
        if self.stall_pending > 0 {
            // Cycle and stall already accounted by `apply_stall_cycles`;
            // just drain the freeze without touching the instruction.
            self.stall_pending -= 1;
            return Ok(CoreState::Running);
        }
        self.stats.cycles += 1;

        let Some(&instr) = self.program.instrs().get(self.pc) else {
            self.state = CoreState::Faulted;
            return Err(StepError::PcOutOfRange { pc: self.pc });
        };

        let mut next_pc = self.pc + 1;
        match instr {
            Instr::Ldi(rd, imm) => self.regs[rd.index()] = imm,
            Instr::Mov(rd, rs) => self.regs[rd.index()] = self.reg(rs),
            Instr::Add(rd, rs, rt) => {
                self.regs[rd.index()] = self.reg(rs).wrapping_add(self.reg(rt))
            }
            Instr::Addi(rd, rs, imm) => {
                self.regs[rd.index()] = self.reg(rs).wrapping_add_signed(imm)
            }
            Instr::Sub(rd, rs, rt) => {
                self.regs[rd.index()] = self.reg(rs).wrapping_sub(self.reg(rt))
            }
            Instr::Mul(rd, rs, rt) => {
                self.regs[rd.index()] = self.reg(rs).wrapping_mul(self.reg(rt))
            }
            Instr::And(rd, rs, rt) => self.regs[rd.index()] = self.reg(rs) & self.reg(rt),
            Instr::Or(rd, rs, rt) => self.regs[rd.index()] = self.reg(rs) | self.reg(rt),
            Instr::Xor(rd, rs, rt) => self.regs[rd.index()] = self.reg(rs) ^ self.reg(rt),
            Instr::Shl(rd, rs, imm) => {
                self.regs[rd.index()] = self.reg(rs).wrapping_shl(u32::from(imm))
            }
            Instr::Shr(rd, rs, imm) => {
                self.regs[rd.index()] = self.reg(rs).wrapping_shr(u32::from(imm))
            }
            Instr::Ld(rd, rs, offset) => {
                let addr = self.reg(rs).wrapping_add_signed(offset);
                if addr >= GLOBAL_BASE {
                    match shared(BusAccess::Load { addr }).map_err(|e| self.fault(e))? {
                        BusGrant::Granted(v) => {
                            self.regs[rd.index()] = v;
                            self.stats.shared_accesses += 1;
                        }
                        BusGrant::Stalled => {
                            self.stats.stall_cycles += 1;
                            return Ok(CoreState::Running); // retry same pc
                        }
                    }
                } else {
                    let v = self.read_private_word(addr).map_err(|e| self.fault(e))?;
                    self.regs[rd.index()] = v;
                }
            }
            Instr::St(rval, raddr, offset) => {
                let addr = self.reg(raddr).wrapping_add_signed(offset);
                let value = self.reg(rval);
                if addr >= GLOBAL_BASE {
                    match shared(BusAccess::Store { addr, value }).map_err(|e| self.fault(e))? {
                        BusGrant::Granted(_) => self.stats.shared_accesses += 1,
                        BusGrant::Stalled => {
                            self.stats.stall_cycles += 1;
                            return Ok(CoreState::Running);
                        }
                    }
                } else {
                    self.write_private_word(addr, value)
                        .map_err(|e| self.fault(e))?;
                }
            }
            Instr::AmoAdd(rd, raddr, rval) => {
                let addr = self.reg(raddr);
                if addr < GLOBAL_BASE {
                    return Err(self.fault(AccessMemoryError::OutOfRange { addr }));
                }
                let value = self.reg(rval);
                match shared(BusAccess::AmoAdd { addr, value }).map_err(|e| self.fault(e))? {
                    BusGrant::Granted(old) => {
                        self.regs[rd.index()] = old;
                        self.stats.shared_accesses += 1;
                    }
                    BusGrant::Stalled => {
                        self.stats.stall_cycles += 1;
                        return Ok(CoreState::Running);
                    }
                }
            }
            Instr::Beq(rs, rt, target) => {
                if self.reg(rs) == self.reg(rt) {
                    next_pc = target;
                }
            }
            Instr::Bne(rs, rt, target) => {
                if self.reg(rs) != self.reg(rt) {
                    next_pc = target;
                }
            }
            Instr::Blt(rs, rt, target) => {
                if self.reg(rs) < self.reg(rt) {
                    next_pc = target;
                }
            }
            Instr::Jmp(target) => next_pc = target,
            Instr::Halt => {
                self.state = CoreState::Halted;
                self.stats.retired += 1;
                return Ok(CoreState::Halted);
            }
        }
        self.stats.retired += 1;
        self.pc = next_pc;
        Ok(CoreState::Running)
    }

    fn fault(&mut self, err: AccessMemoryError) -> StepError {
        self.state = CoreState::Faulted;
        StepError::Memory(err)
    }
}

impl Default for CoreSim {
    fn default() -> Self {
        CoreSim::new()
    }
}

fn check_private(addr: u32) -> Result<(), AccessMemoryError> {
    if !addr.is_multiple_of(4) {
        return Err(AccessMemoryError::Misaligned { addr });
    }
    if addr as usize + 4 > PRIVATE_SRAM_BYTES {
        return Err(AccessMemoryError::OutOfRange { addr });
    }
    Ok(())
}

/// Failure modes of [`CoreSim::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepError {
    /// The program counter ran off the end of the program.
    PcOutOfRange {
        /// The offending pc.
        pc: usize,
    },
    /// A memory access faulted.
    Memory(AccessMemoryError),
}

impl fmt::Display for StepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StepError::PcOutOfRange { pc } => write!(f, "program counter {pc} out of range"),
            StepError::Memory(e) => write!(f, "memory fault: {e}"),
        }
    }
}

impl Error for StepError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StepError::Memory(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Program;

    fn run(core: &mut CoreSim, max: u64) {
        let mut cycles = 0;
        while core.state() == CoreState::Running {
            core.step(|_| Ok(BusGrant::Stalled)).expect("no fault");
            cycles += 1;
            assert!(cycles < max, "program did not halt");
        }
    }

    #[test]
    fn arithmetic_and_logic() {
        let program = Program::builder()
            .ldi(Reg::R1, 0xF0)
            .ldi(Reg::R2, 0x0F)
            .or(Reg::R3, Reg::R1, Reg::R2)
            .and(Reg::R4, Reg::R1, Reg::R2)
            .xor(Reg::R5, Reg::R1, Reg::R2)
            .shl(Reg::R6, Reg::R2, 4)
            .shr(Reg::R7, Reg::R1, 4)
            .sub(Reg::R8, Reg::R1, Reg::R2)
            .mul(Reg::R9, Reg::R2, Reg::R2)
            .halt()
            .build()
            .expect("ok");
        let mut core = CoreSim::new();
        core.load_program(&program);
        run(&mut core, 100);
        assert_eq!(core.reg(Reg::R3), 0xFF);
        assert_eq!(core.reg(Reg::R4), 0x00);
        assert_eq!(core.reg(Reg::R5), 0xFF);
        assert_eq!(core.reg(Reg::R6), 0xF0);
        assert_eq!(core.reg(Reg::R7), 0x0F);
        assert_eq!(core.reg(Reg::R8), 0xE1);
        assert_eq!(core.reg(Reg::R9), 225);
    }

    #[test]
    fn countdown_loop_sums() {
        // Sum 1..=10 = 55.
        let program = Program::builder()
            .ldi(Reg::R1, 0)
            .ldi(Reg::R2, 10)
            .label("loop")
            .add(Reg::R1, Reg::R1, Reg::R2)
            .addi(Reg::R2, Reg::R2, -1)
            .bne(Reg::R2, Reg::R0, "loop")
            .halt()
            .build()
            .expect("ok");
        let mut core = CoreSim::new();
        core.load_program(&program);
        run(&mut core, 100);
        assert_eq!(core.reg(Reg::R1), 55);
        assert_eq!(core.stats().retired, 2 + 3 * 10 + 1);
    }

    #[test]
    fn private_memory_round_trip() {
        // Store a value, load it back through a different register.
        let program = Program::builder()
            .ldi(Reg::R1, 0xDEADBEEF)
            .ldi(Reg::R2, 128)
            .st(Reg::R1, Reg::R2, 4)
            .ld(Reg::R3, Reg::R2, 4)
            .halt()
            .build()
            .expect("ok");
        let mut core = CoreSim::new();
        core.load_program(&program);
        run(&mut core, 100);
        assert_eq!(core.reg(Reg::R3), 0xDEADBEEF);
        assert_eq!(core.read_private_word(132).expect("ok"), 0xDEADBEEF);
    }

    #[test]
    fn fibonacci_in_memory() {
        // Compute fib(0..12) into a private array and check fib(12)=144.
        let program = Program::builder()
            .ldi(Reg::R1, 0) // base pointer
            .ldi(Reg::R2, 0) // fib(0)
            .ldi(Reg::R3, 1) // fib(1)
            .st(Reg::R2, Reg::R1, 0)
            .st(Reg::R3, Reg::R1, 4)
            .ldi(Reg::R4, 2) // i
            .ldi(Reg::R5, 13) // limit
            .label("loop")
            .add(Reg::R6, Reg::R2, Reg::R3)
            .shl(Reg::R7, Reg::R4, 2)
            .add(Reg::R7, Reg::R7, Reg::R1)
            .st(Reg::R6, Reg::R7, 0)
            .mov(Reg::R2, Reg::R3)
            .mov(Reg::R3, Reg::R6)
            .addi(Reg::R4, Reg::R4, 1)
            .blt(Reg::R4, Reg::R5, "loop")
            .halt()
            .build()
            .expect("ok");
        let mut core = CoreSim::new();
        core.load_program(&program);
        run(&mut core, 1000);
        assert_eq!(core.read_private_word(12 * 4).expect("ok"), 144);
    }

    #[test]
    fn euclid_gcd_program() {
        // gcd(252, 105) = 21 by repeated subtraction.
        let program = Program::builder()
            .ldi(Reg::R1, 252)
            .ldi(Reg::R2, 105)
            .label("loop")
            .beq(Reg::R1, Reg::R2, "done")
            .blt(Reg::R1, Reg::R2, "swap_sub")
            .sub(Reg::R1, Reg::R1, Reg::R2)
            .jmp("loop")
            .label("swap_sub")
            .sub(Reg::R2, Reg::R2, Reg::R1)
            .jmp("loop")
            .label("done")
            .halt()
            .build()
            .expect("ok");
        let mut core = CoreSim::new();
        core.load_program(&program);
        run(&mut core, 10_000);
        assert_eq!(core.reg(Reg::R1), 21);
        assert_eq!(core.reg(Reg::R2), 21);
    }

    #[test]
    fn memcpy_program() {
        // Copy 16 words from address 0 to address 256.
        let program = Program::builder()
            .ldi(Reg::R1, 0) // src
            .ldi(Reg::R2, 256) // dst
            .ldi(Reg::R3, 16) // count
            .ldi(Reg::R0, 0)
            .label("loop")
            .ld(Reg::R4, Reg::R1, 0)
            .st(Reg::R4, Reg::R2, 0)
            .addi(Reg::R1, Reg::R1, 4)
            .addi(Reg::R2, Reg::R2, 4)
            .addi(Reg::R3, Reg::R3, -1)
            .bne(Reg::R3, Reg::R0, "loop")
            .halt()
            .build()
            .expect("ok");
        let mut core = CoreSim::new();
        for i in 0..16u32 {
            core.write_private_word(i * 4, i * 17 + 3).expect("ok");
        }
        core.load_program(&program);
        run(&mut core, 10_000);
        for i in 0..16u32 {
            assert_eq!(core.read_private_word(256 + i * 4).expect("ok"), i * 17 + 3);
        }
    }

    #[test]
    fn insertion_sort_program() {
        // Sort 8 words in place at address 0 (insertion sort).
        let n = 8u32;
        let program = Program::builder()
            .ldi(Reg::R1, 1) // i
            .ldi(Reg::R9, n) // n
            .label("outer")
            .blt(Reg::R1, Reg::R9, "body")
            .halt()
            .label("body")
            .shl(Reg::R2, Reg::R1, 2)
            .ld(Reg::R3, Reg::R2, 0) // key = a[i]
            .mov(Reg::R4, Reg::R1) // j = i
            .label("inner")
            .beq(Reg::R4, Reg::R0, "insert")
            .addi(Reg::R5, Reg::R4, -1)
            .shl(Reg::R6, Reg::R5, 2)
            .ld(Reg::R7, Reg::R6, 0) // a[j-1]
            // if a[j-1] < key (i.e. not >) stop shifting
            .blt(Reg::R7, Reg::R3, "insert")
            .beq(Reg::R7, Reg::R3, "insert")
            .shl(Reg::R8, Reg::R4, 2)
            .st(Reg::R7, Reg::R8, 0) // a[j] = a[j-1]
            .mov(Reg::R4, Reg::R5)
            .jmp("inner")
            .label("insert")
            .shl(Reg::R8, Reg::R4, 2)
            .st(Reg::R3, Reg::R8, 0) // a[j] = key
            .addi(Reg::R1, Reg::R1, 1)
            .jmp("outer")
            .build()
            .expect("ok");
        let mut core = CoreSim::new();
        let data = [42u32, 7, 99, 1, 56, 23, 88, 3];
        for (i, &v) in data.iter().enumerate() {
            core.write_private_word(i as u32 * 4, v).expect("ok");
        }
        core.load_program(&program);
        run(&mut core, 100_000);
        let mut sorted = data;
        sorted.sort_unstable();
        for (i, &v) in sorted.iter().enumerate() {
            assert_eq!(
                core.read_private_word(i as u32 * 4).expect("ok"),
                v,
                "index {i}"
            );
        }
    }

    #[test]
    fn shared_access_goes_through_the_bus() {
        let program = Program::builder()
            .ldi(Reg::R1, GLOBAL_BASE)
            .ld(Reg::R2, Reg::R1, 8)
            .halt()
            .build()
            .expect("ok");
        let mut core = CoreSim::new();
        core.load_program(&program);
        core.step(|_| Ok(BusGrant::Stalled)).expect("ldi");
        // First attempt stalls...
        core.step(|a| {
            assert_eq!(
                a,
                BusAccess::Load {
                    addr: GLOBAL_BASE + 8
                }
            );
            Ok(BusGrant::Stalled)
        })
        .expect("stall");
        assert_eq!(core.stats().stall_cycles, 1);
        // ...second is granted.
        core.step(|_| Ok(BusGrant::Granted(777))).expect("grant");
        run(&mut core, 10);
        assert_eq!(core.reg(Reg::R2), 777);
        assert_eq!(core.stats().shared_accesses, 1);
    }

    #[test]
    fn misaligned_access_faults() {
        let program = Program::builder()
            .ldi(Reg::R1, 2)
            .ld(Reg::R2, Reg::R1, 0)
            .halt()
            .build()
            .expect("ok");
        let mut core = CoreSim::new();
        core.load_program(&program);
        core.step(|_| Ok(BusGrant::Stalled)).expect("ldi");
        let err = core.step(|_| Ok(BusGrant::Stalled)).expect_err("fault");
        assert!(matches!(
            err,
            StepError::Memory(AccessMemoryError::Misaligned { addr: 2 })
        ));
        assert_eq!(core.state(), CoreState::Faulted);
        // Further steps are inert.
        assert_eq!(
            core.step(|_| Ok(BusGrant::Stalled)).expect("inert"),
            CoreState::Faulted
        );
    }

    #[test]
    fn out_of_range_private_access_faults() {
        let mut core = CoreSim::new();
        assert!(matches!(
            core.write_private_word(PRIVATE_SRAM_BYTES as u32, 1),
            Err(AccessMemoryError::OutOfRange { .. })
        ));
        assert!(core
            .read_private_word(PRIVATE_SRAM_BYTES as u32 - 4)
            .is_ok());
    }

    #[test]
    fn new_core_is_halted_until_programmed() {
        let mut core = CoreSim::new();
        assert_eq!(core.state(), CoreState::Halted);
        assert_eq!(
            core.step(|_| Ok(BusGrant::Stalled)).expect("no-op"),
            CoreState::Halted
        );
        assert_eq!(core.stats().cycles, 0);
    }

    #[test]
    fn error_display() {
        let e = StepError::PcOutOfRange { pc: 42 };
        assert!(e.to_string().contains("42"));
    }

    #[test]
    fn apply_stall_cycles_accounts_up_front_and_freezes_the_pipeline() {
        let program = Program::builder()
            .ldi(Reg::R1, 1)
            .ldi(Reg::R2, 2)
            .halt()
            .build()
            .expect("builds");
        let mut core = CoreSim::new();
        core.load_program(&program);
        core.step(|_| Ok(BusGrant::Stalled)).expect("steps");
        assert_eq!(core.stats().retired, 1);
        // An already-performed access reports 3 extra cycles: they are
        // all accounted immediately…
        core.apply_stall_cycles(3);
        let frozen = core.stats();
        assert_eq!(frozen.cycles, 1 + 3);
        assert_eq!(frozen.stall_cycles, 3);
        assert_eq!(core.stall_pending(), 3);
        // …and the next 3 steps drain the freeze without executing or
        // double-counting anything.
        for expected_left in [2u64, 1, 0] {
            assert_eq!(
                core.step(|_| Ok(BusGrant::Stalled)).expect("steps"),
                CoreState::Running
            );
            assert_eq!(core.stall_pending(), expected_left);
            assert_eq!(core.stats(), frozen, "frozen steps must not account");
            assert_eq!(core.stats().retired, 1);
        }
        // The pipeline thaws: the second ldi executes on the next step.
        core.step(|_| Ok(BusGrant::Stalled)).expect("steps");
        assert_eq!(core.reg(Reg::R2), 2);
        assert_eq!(core.stats().retired, 2);
        assert_eq!(core.stats().cycles, 5);
    }

    #[test]
    fn drain_stall_cycles_matches_frozen_steps() {
        let program = Program::builder()
            .ldi(Reg::R1, 1)
            .ldi(Reg::R2, 2)
            .halt()
            .build()
            .expect("builds");
        let build = || {
            let mut core = CoreSim::new();
            core.load_program(&program);
            core.step(|_| Ok(BusGrant::Stalled)).expect("steps");
            core.apply_stall_cycles(5);
            core
        };
        let mut stepped = build();
        let mut drained = build();
        for _ in 0..4 {
            stepped.step(|_| Ok(BusGrant::Stalled)).expect("steps");
        }
        drained.drain_stall_cycles(4);
        assert_eq!(stepped.stall_pending(), drained.stall_pending());
        assert_eq!(stepped.stats(), drained.stats());
        // Both thaw on the same subsequent cycle and execute identically.
        stepped.step(|_| Ok(BusGrant::Stalled)).expect("steps");
        drained.step(|_| Ok(BusGrant::Stalled)).expect("steps");
        stepped.step(|_| Ok(BusGrant::Stalled)).expect("steps");
        drained.step(|_| Ok(BusGrant::Stalled)).expect("steps");
        assert_eq!(stepped.reg(Reg::R2), 2);
        assert_eq!(drained.reg(Reg::R2), 2);
        assert_eq!(stepped.stats(), drained.stats());
    }

    #[test]
    fn apply_stall_cycles_of_zero_is_free() {
        let mut core = CoreSim::new();
        core.load_program(&Program::builder().halt().build().expect("builds"));
        core.apply_stall_cycles(0);
        assert_eq!(core.stats(), CoreStats::default());
        assert_eq!(core.stall_pending(), 0);
    }
}
