//! The intra-tile crossbar (the ARM BusMatrix of the silicon, Sec. II).
//!
//! All fourteen cores, plus the network adapters, arbitrate through one
//! crossbar onto the five memory-chiplet banks. Each bank accepts one
//! access per cycle; contention shows up as core stall cycles. Fairness
//! comes from the tile stepping its cores in rotating order, so the
//! crossbar itself only has to track per-cycle bank occupancy.

use std::fmt;

use crate::memory::BANK_COUNT;

/// Per-cycle bank arbiter.
///
/// # Examples
///
/// ```
/// use wsp_tile::Crossbar;
///
/// let mut xbar = Crossbar::new();
/// xbar.begin_cycle();
/// assert!(xbar.request(0)); // first access to bank 0 granted
/// assert!(!xbar.request(0)); // second in the same cycle denied
/// xbar.begin_cycle();
/// assert!(xbar.request(0)); // next cycle: granted again
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Crossbar {
    busy: [bool; BANK_COUNT],
    grants: u64,
    conflicts: u64,
}

impl Crossbar {
    /// Creates an idle crossbar.
    pub fn new() -> Self {
        Crossbar {
            busy: [false; BANK_COUNT],
            grants: 0,
            conflicts: 0,
        }
    }

    /// Starts a new cycle: all bank ports become free.
    pub fn begin_cycle(&mut self) {
        self.busy = [false; BANK_COUNT];
    }

    /// Requests the given bank this cycle. Returns `true` (and occupies
    /// the bank) if the port was free.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is not a valid bank index.
    pub fn request(&mut self, bank: usize) -> bool {
        assert!(bank < BANK_COUNT, "bank {bank} out of range");
        if self.busy[bank] {
            self.conflicts += 1;
            false
        } else {
            self.busy[bank] = true;
            self.grants += 1;
            true
        }
    }

    /// Total granted accesses.
    #[inline]
    pub fn grants(&self) -> u64 {
        self.grants
    }

    /// Total denied (conflicting) requests.
    #[inline]
    pub fn conflicts(&self) -> u64 {
        self.conflicts
    }
}

impl Default for Crossbar {
    fn default() -> Self {
        Crossbar::new()
    }
}

impl fmt::Display for Crossbar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "crossbar: {} grants, {} conflicts",
            self.grants, self.conflicts
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_access_per_bank_per_cycle() {
        let mut xbar = Crossbar::new();
        xbar.begin_cycle();
        for bank in 0..BANK_COUNT {
            assert!(xbar.request(bank));
        }
        for bank in 0..BANK_COUNT {
            assert!(!xbar.request(bank));
        }
        assert_eq!(xbar.grants(), BANK_COUNT as u64);
        assert_eq!(xbar.conflicts(), BANK_COUNT as u64);
    }

    #[test]
    fn banks_are_independent() {
        let mut xbar = Crossbar::new();
        xbar.begin_cycle();
        assert!(xbar.request(0));
        assert!(xbar.request(1)); // different bank unaffected
    }

    #[test]
    fn begin_cycle_frees_ports() {
        let mut xbar = Crossbar::new();
        xbar.begin_cycle();
        assert!(xbar.request(2));
        xbar.begin_cycle();
        assert!(xbar.request(2));
        assert_eq!(xbar.conflicts(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_bank_rejected() {
        let mut xbar = Crossbar::new();
        xbar.begin_cycle();
        let _ = xbar.request(BANK_COUNT);
    }

    #[test]
    fn display_shows_counters() {
        let mut xbar = Crossbar::new();
        xbar.begin_cycle();
        let _ = xbar.request(0);
        assert_eq!(xbar.to_string(), "crossbar: 1 grants, 0 conflicts");
    }
}
