//! The memory chiplet: five 128 KB SRAM banks (Sec. II).
//!
//! Four banks are mapped into the global shared address space (words
//! interleaved across them so streaming accesses hit all four in
//! parallel); the fifth is reachable only by this tile's cores and
//! routers. Each bank has one port — one word per bank per cycle — which
//! is the per-tile term of Table I's 6.144 TB/s aggregate shared-memory
//! bandwidth.

use std::error::Error;
use std::fmt;

/// Number of SRAM banks on the memory chiplet.
pub const BANK_COUNT: usize = 5;

/// Bytes per bank (128 KB).
pub const BANK_BYTES: usize = 128 * 1024;

/// Number of banks in the global shared address space.
pub const GLOBAL_BANKS: usize = 4;

/// Size of the globally addressable region of one tile (4 × 128 KB).
pub const GLOBAL_REGION_BYTES: usize = GLOBAL_BANKS * BANK_BYTES;

/// Total capacity of the memory chiplet (640 KB).
pub const TOTAL_BYTES: usize = BANK_COUNT * BANK_BYTES;

/// Bytes per SRAM row (the row-buffer granule of the banked timing
/// model): 2 KiB, i.e. 512 words and 64 rows per 128 KB bank.
pub const ROW_BYTES: usize = 2048;

/// The bank a tile-local offset maps to, as pure offset arithmetic:
/// global offsets word-interleave across banks 0–3, local offsets go to
/// bank 4.
///
/// This is [`MemoryChiplet::bank_of`] without the chiplet: the mapping
/// depends only on the address, so shared-memory validation (e.g. a
/// machine shard checking a *remote* tile's bank before queueing a fabric
/// request) can run without touching the owner's memory instance.
///
/// # Errors
///
/// Returns an error for misaligned or out-of-range offsets.
pub fn bank_of_offset(offset: u32) -> Result<usize, AccessMemoryError> {
    locate(offset).map(|(bank, _)| bank)
}

/// Maps an offset to `(bank, row-within-bank)` for row-buffer timing
/// models. The row index is the byte-within-bank address divided by
/// [`ROW_BYTES`], so word-interleaved streaming walks each global
/// bank's rows in lockstep.
///
/// # Errors
///
/// Returns an error for misaligned or out-of-range offsets.
pub fn bank_row_of_offset(offset: u32) -> Result<(usize, u32), AccessMemoryError> {
    locate(offset).map(|(bank, byte)| (bank, (byte / ROW_BYTES) as u32))
}

/// Maps an offset to `(bank, byte-within-bank)`.
fn locate(offset: u32) -> Result<(usize, usize), AccessMemoryError> {
    if !offset.is_multiple_of(4) {
        return Err(AccessMemoryError::Misaligned { addr: offset });
    }
    let off = offset as usize;
    if off + 4 <= GLOBAL_REGION_BYTES {
        let word = off / 4;
        let bank = word % GLOBAL_BANKS;
        let byte = (word / GLOBAL_BANKS) * 4;
        Ok((bank, byte))
    } else if off >= GLOBAL_REGION_BYTES && off + 4 <= TOTAL_BYTES {
        Ok((GLOBAL_BANKS, off - GLOBAL_REGION_BYTES))
    } else {
        Err(AccessMemoryError::OutOfRange { addr: offset })
    }
}

/// Memory-access failure modes shared by the tile models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessMemoryError {
    /// Address not 4-byte aligned.
    Misaligned {
        /// The offending byte address.
        addr: u32,
    },
    /// Address outside the addressable region.
    OutOfRange {
        /// The offending byte address.
        addr: u32,
    },
}

impl fmt::Display for AccessMemoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessMemoryError::Misaligned { addr } => {
                write!(f, "address {addr:#x} is not word aligned")
            }
            AccessMemoryError::OutOfRange { addr } => {
                write!(f, "address {addr:#x} outside addressable memory")
            }
        }
    }
}

impl Error for AccessMemoryError {}

/// The five-bank memory chiplet of one tile.
///
/// Offsets `0..512 KiB` address the four global banks (word-interleaved);
/// offsets `512..640 KiB` address the tile-local bank.
///
/// # Examples
///
/// ```
/// use wsp_tile::MemoryChiplet;
///
/// let mut mem = MemoryChiplet::new();
/// mem.write_word(0x40, 123)?;
/// assert_eq!(mem.read_word(0x40)?, 123);
/// # Ok::<(), wsp_tile::AccessMemoryError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryChiplet {
    banks: Vec<Vec<u8>>,
}

impl MemoryChiplet {
    /// Creates a zero-initialised memory chiplet.
    pub fn new() -> Self {
        MemoryChiplet {
            banks: (0..BANK_COUNT).map(|_| vec![0u8; BANK_BYTES]).collect(),
        }
    }

    /// The bank an offset maps to: global offsets word-interleave across
    /// banks 0–3, local offsets go to bank 4.
    ///
    /// # Errors
    ///
    /// Returns an error for misaligned or out-of-range offsets.
    pub fn bank_of(&self, offset: u32) -> Result<usize, AccessMemoryError> {
        bank_of_offset(offset)
    }

    /// Reads a word at `offset`.
    ///
    /// # Errors
    ///
    /// Returns an error for misaligned or out-of-range offsets.
    pub fn read_word(&self, offset: u32) -> Result<u32, AccessMemoryError> {
        let (bank, byte) = locate(offset)?;
        let s = &self.banks[bank][byte..byte + 4];
        Ok(u32::from_le_bytes(s.try_into().expect("4 bytes")))
    }

    /// Writes a word at `offset`.
    ///
    /// # Errors
    ///
    /// Returns an error for misaligned or out-of-range offsets.
    pub fn write_word(&mut self, offset: u32, value: u32) -> Result<(), AccessMemoryError> {
        let (bank, byte) = locate(offset)?;
        self.banks[bank][byte..byte + 4].copy_from_slice(&value.to_le_bytes());
        Ok(())
    }
}

impl Default for MemoryChiplet {
    fn default() -> Self {
        MemoryChiplet::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_interleave_across_global_banks() {
        let mem = MemoryChiplet::new();
        assert_eq!(mem.bank_of(0).expect("ok"), 0);
        assert_eq!(mem.bank_of(4).expect("ok"), 1);
        assert_eq!(mem.bank_of(8).expect("ok"), 2);
        assert_eq!(mem.bank_of(12).expect("ok"), 3);
        assert_eq!(mem.bank_of(16).expect("ok"), 0);
    }

    #[test]
    fn local_bank_region() {
        let mem = MemoryChiplet::new();
        assert_eq!(
            mem.bank_of(GLOBAL_REGION_BYTES as u32).expect("ok"),
            GLOBAL_BANKS
        );
        assert_eq!(mem.bank_of(TOTAL_BYTES as u32 - 4).expect("ok"), 4);
    }

    #[test]
    fn read_write_round_trip_everywhere() {
        let mut mem = MemoryChiplet::new();
        for offset in [0u32, 4, 12, 100, 524288, 655356] {
            mem.write_word(offset, offset ^ 0xABCD_1234).expect("write");
        }
        for offset in [0u32, 4, 12, 100, 524288, 655356] {
            assert_eq!(mem.read_word(offset).expect("read"), offset ^ 0xABCD_1234);
        }
    }

    #[test]
    fn interleaved_words_do_not_alias() {
        let mut mem = MemoryChiplet::new();
        for w in 0..64u32 {
            mem.write_word(w * 4, w).expect("write");
        }
        for w in 0..64u32 {
            assert_eq!(mem.read_word(w * 4).expect("read"), w);
        }
    }

    #[test]
    fn bank_of_offset_matches_the_chiplet_mapping() {
        let mem = MemoryChiplet::new();
        for offset in (0..TOTAL_BYTES as u32 + 8).step_by(4) {
            assert_eq!(bank_of_offset(offset), mem.bank_of(offset), "{offset:#x}");
        }
        assert_eq!(bank_of_offset(7), mem.bank_of(7));
    }

    #[test]
    fn misaligned_rejected() {
        let mem = MemoryChiplet::new();
        assert_eq!(
            mem.read_word(3),
            Err(AccessMemoryError::Misaligned { addr: 3 })
        );
    }

    #[test]
    fn out_of_range_rejected() {
        let mut mem = MemoryChiplet::new();
        assert_eq!(
            mem.write_word(TOTAL_BYTES as u32, 1),
            Err(AccessMemoryError::OutOfRange {
                addr: TOTAL_BYTES as u32
            })
        );
    }

    #[test]
    fn global_local_boundary_is_exact() {
        // The 512 KiB boundary: the last global word belongs to an
        // interleaved bank, the first local word to bank 4, and the
        // word straddling the boundary cannot exist (aligned stride).
        let last_global = GLOBAL_REGION_BYTES as u32 - 4;
        let word = (last_global / 4) as usize;
        assert_eq!(bank_of_offset(last_global), Ok(word % GLOBAL_BANKS));
        assert_eq!(bank_of_offset(GLOBAL_REGION_BYTES as u32), Ok(GLOBAL_BANKS));
        // One word below the boundary lands in the final row of its
        // global bank; one at the boundary in row 0 of the local bank.
        let (bank, row) = bank_row_of_offset(last_global).expect("ok");
        assert!(bank < GLOBAL_BANKS);
        assert_eq!(row as usize, BANK_BYTES / ROW_BYTES - 1);
        assert_eq!(
            bank_row_of_offset(GLOBAL_REGION_BYTES as u32),
            Ok((GLOBAL_BANKS, 0))
        );
    }

    #[test]
    fn last_valid_word_of_local_bank() {
        let last = TOTAL_BYTES as u32 - 4;
        assert_eq!(bank_of_offset(last), Ok(GLOBAL_BANKS));
        let (bank, row) = bank_row_of_offset(last).expect("ok");
        assert_eq!(bank, GLOBAL_BANKS);
        assert_eq!(row as usize, BANK_BYTES / ROW_BYTES - 1);
        // The very next word is the first invalid one.
        assert_eq!(
            bank_of_offset(TOTAL_BYTES as u32),
            Err(AccessMemoryError::OutOfRange {
                addr: TOTAL_BYTES as u32
            })
        );
    }

    #[test]
    fn unaligned_offsets_rejected_everywhere() {
        for offset in [1u32, 2, 3, GLOBAL_REGION_BYTES as u32 + 2, 0xFFFF_FFFD] {
            assert_eq!(
                bank_of_offset(offset),
                Err(AccessMemoryError::Misaligned { addr: offset }),
                "{offset:#x}"
            );
            assert_eq!(
                bank_row_of_offset(offset),
                Err(AccessMemoryError::Misaligned { addr: offset }),
                "{offset:#x}"
            );
        }
    }

    #[test]
    fn out_of_range_error_path_is_aligned_aware() {
        // Aligned but beyond the chiplet: OutOfRange, not Misaligned.
        for offset in [TOTAL_BYTES as u32, TOTAL_BYTES as u32 + 4, 0xFFFF_FFFC] {
            assert_eq!(
                bank_row_of_offset(offset),
                Err(AccessMemoryError::OutOfRange { addr: offset }),
                "{offset:#x}"
            );
        }
    }

    #[test]
    fn rows_advance_in_lockstep_across_interleaved_banks() {
        // Word-interleaving: 4 consecutive words hit banks 0..4, all in
        // the same row; a full row's worth of stride-4 words later, the
        // row index advances on every bank.
        for w in 0..4u32 {
            assert_eq!(bank_row_of_offset(w * 4), Ok((w as usize, 0)));
        }
        let words_per_row_group = (GLOBAL_BANKS * ROW_BYTES / 4) as u32;
        for w in 0..4u32 {
            assert_eq!(
                bank_row_of_offset((words_per_row_group + w) * 4),
                Ok((w as usize, 1))
            );
        }
    }

    #[test]
    fn capacity_constants_match_table1() {
        // 5 banks × 128 KB = 640 KB per tile; 4 banks (512 KB) global.
        assert_eq!(TOTAL_BYTES, 640 * 1024);
        assert_eq!(GLOBAL_REGION_BYTES, 512 * 1024);
        // Whole wafer: 1024 tiles × 512 KB global = 512 MB (Table I).
        assert_eq!(1024 * GLOBAL_REGION_BYTES, 512 * 1024 * 1024);
    }

    #[test]
    fn error_display_mentions_address() {
        assert!(AccessMemoryError::Misaligned { addr: 7 }
            .to_string()
            .contains("0x7"));
        assert!(AccessMemoryError::OutOfRange { addr: 0xA0000 }
            .to_string()
            .contains("outside"));
    }
}
