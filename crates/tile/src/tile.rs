//! The assembled tile: 14 cores + crossbar + memory chiplet.

use std::error::Error;
use std::fmt;

use crate::core::{BusAccess, BusGrant, CoreSim, CoreState, StepError};
use crate::isa::Program;
use crate::memory::{AccessMemoryError, MemoryChiplet, TOTAL_BYTES};
use crate::memory_model::{MemTiming, MemoryModel, MemoryModelKind};
use crate::{CORES_PER_TILE, GLOBAL_BASE};

/// Aggregate execution statistics of a tile.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TileStats {
    /// Cycles stepped.
    pub cycles: u64,
    /// Instructions retired across all cores.
    pub retired: u64,
    /// Shared-memory accesses granted.
    pub shared_accesses: u64,
    /// Denied bank requests (crossbar conflicts and busy windows).
    pub bank_conflicts: u64,
}

/// One tile of the waferscale array, executable in isolation.
///
/// The 14 cores step in a rotating order each cycle so crossbar
/// arbitration is fair over time. Shared-memory addresses
/// (`GLOBAL_BASE + offset`) resolve to this tile's own memory chiplet; in
/// the full system model, remote offsets are handled by the network layer
/// of the `waferscale` crate before they reach the tile.
///
/// # Examples
///
/// See the crate-level example.
#[derive(Debug, Clone)]
pub struct Tile {
    cores: Vec<CoreSim>,
    memory: MemoryChiplet,
    memory_model: Box<dyn MemoryModel>,
    cycles: u64,
    rotate: usize,
}

impl Tile {
    /// Creates a tile with 14 idle cores, zeroed memory, and the
    /// fixed-latency (paper) memory model.
    pub fn new() -> Self {
        Tile::with_memory_model(MemoryModelKind::Fixed)
    }

    /// Creates a tile with the given memory-timing backend.
    pub fn with_memory_model(kind: MemoryModelKind) -> Self {
        Tile {
            cores: (0..CORES_PER_TILE).map(|_| CoreSim::new()).collect(),
            memory: MemoryChiplet::new(),
            memory_model: kind.build(),
            cycles: 0,
            rotate: 0,
        }
    }

    /// The memory-timing backend (counters: grants, conflicts, row
    /// hits/misses).
    pub fn memory_model(&self) -> &dyn MemoryModel {
        self.memory_model.as_ref()
    }

    /// Access to a core (for register setup / inspection).
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn core(&self, core: usize) -> &CoreSim {
        &self.cores[core]
    }

    /// Mutable access to a core.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn core_mut(&mut self, core: usize) -> &mut CoreSim {
        &mut self.cores[core]
    }

    /// Loads a program into one core.
    ///
    /// # Errors
    ///
    /// Returns an error if `core` is out of range.
    pub fn load_program(&mut self, core: usize, program: &Program) -> Result<(), LoadProgramError> {
        let slot = self
            .cores
            .get_mut(core)
            .ok_or(LoadProgramError::NoSuchCore { core })?;
        slot.load_program(program);
        Ok(())
    }

    /// Loads the same program into every core — the broadcast mode the
    /// JTAG infrastructure provides for the common SPMD case (Sec. VII).
    pub fn broadcast_program(&mut self, program: &Program) {
        for core in &mut self.cores {
            core.load_program(program);
        }
    }

    /// Reads a word of this tile's shared memory (test/host access).
    ///
    /// # Errors
    ///
    /// Returns an error for misaligned or out-of-range offsets.
    pub fn read_shared_word(&self, offset: u32) -> Result<u32, AccessMemoryError> {
        self.memory.read_word(offset)
    }

    /// Writes a word of this tile's shared memory (test/host access).
    ///
    /// # Errors
    ///
    /// Returns an error for misaligned or out-of-range offsets.
    pub fn write_shared_word(&mut self, offset: u32, value: u32) -> Result<(), AccessMemoryError> {
        self.memory.write_word(offset, value)
    }

    /// Whether any core is still running.
    pub fn any_running(&self) -> bool {
        self.cores.iter().any(|c| c.state() == CoreState::Running)
    }

    /// Advances the whole tile one cycle.
    ///
    /// # Errors
    ///
    /// Propagates the first core fault encountered (the faulting core is
    /// identified in the error).
    pub fn step(&mut self) -> Result<(), RunTileError> {
        self.cycles += 1;
        let now = self.cycles;
        let n = self.cores.len();
        for i in 0..n {
            let idx = (i + self.rotate) % n;
            // Split borrows: the closure needs the memory and its timing
            // model but not the core vector.
            let memory = &mut self.memory;
            let model = self.memory_model.as_mut();
            let core = &mut self.cores[idx];
            let mut stall = 0u64;
            core.step(|access| service_shared(memory, model, now, &mut stall, access))
                .map_err(|source| RunTileError::CoreFault { core: idx, source })?;
            core.apply_stall_cycles(stall);
        }
        self.rotate = (self.rotate + 1) % n;
        Ok(())
    }

    /// Steps until every core halts.
    ///
    /// # Errors
    ///
    /// Returns [`RunTileError::CycleLimit`] if cores are still running
    /// after `max_cycles`, or the first core fault.
    pub fn run_until_halt(&mut self, max_cycles: u64) -> Result<TileStats, RunTileError> {
        let start = self.cycles;
        while self.any_running() {
            if self.cycles - start >= max_cycles {
                return Err(RunTileError::CycleLimit { max_cycles });
            }
            self.step()?;
        }
        Ok(self.stats())
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> TileStats {
        TileStats {
            cycles: self.cycles,
            retired: self.cores.iter().map(|c| c.stats().retired).sum(),
            shared_accesses: self.cores.iter().map(|c| c.stats().shared_accesses).sum(),
            bank_conflicts: self.memory_model.conflicts(),
        }
    }
}

impl Default for Tile {
    fn default() -> Self {
        Tile::new()
    }
}

/// Services one shared-memory access against the tile's own banks.
///
/// Execute-then-stall: the model is presented exactly once; on a grant
/// the data access performs immediately and any extra latency lands in
/// `*stall_out` for the caller to apply via
/// [`CoreSim::apply_stall_cycles`].
fn service_shared(
    memory: &mut MemoryChiplet,
    model: &mut dyn MemoryModel,
    now: u64,
    stall_out: &mut u64,
    access: BusAccess,
) -> Result<BusGrant, AccessMemoryError> {
    let addr = match access {
        BusAccess::Load { addr }
        | BusAccess::Store { addr, .. }
        | BusAccess::AmoAdd { addr, .. } => addr,
    };
    let offset = addr - GLOBAL_BASE;
    if offset as usize >= TOTAL_BYTES {
        return Err(AccessMemoryError::OutOfRange { addr });
    }
    memory.bank_of(offset)?;
    match model.request(offset, now) {
        MemTiming::Denied => return Ok(BusGrant::Stalled),
        MemTiming::Granted { stall } => *stall_out = stall,
    }
    match access {
        BusAccess::Load { .. } => Ok(BusGrant::Granted(memory.read_word(offset)?)),
        BusAccess::Store { value, .. } => {
            memory.write_word(offset, value)?;
            Ok(BusGrant::Granted(0))
        }
        BusAccess::AmoAdd { value, .. } => {
            // One bank grant covers the whole read-modify-write: the
            // bank port is the serialisation point.
            let old = memory.read_word(offset)?;
            memory.write_word(offset, old.wrapping_add(value))?;
            Ok(BusGrant::Granted(old))
        }
    }
}

/// Error loading a program into a tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadProgramError {
    /// The core index does not exist.
    NoSuchCore {
        /// The requested index.
        core: usize,
    },
}

impl fmt::Display for LoadProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadProgramError::NoSuchCore { core } => {
                write!(f, "tile has no core {core} (14 per tile)")
            }
        }
    }
}

impl Error for LoadProgramError {}

/// Error advancing a tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunTileError {
    /// A core trapped.
    CoreFault {
        /// The faulting core.
        core: usize,
        /// The architectural fault.
        source: StepError,
    },
    /// `run_until_halt` exceeded its budget.
    CycleLimit {
        /// The configured budget.
        max_cycles: u64,
    },
}

impl fmt::Display for RunTileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunTileError::CoreFault { core, source } => write!(f, "core {core} faulted: {source}"),
            RunTileError::CycleLimit { max_cycles } => {
                write!(f, "tile did not halt within {max_cycles} cycles")
            }
        }
    }
}

impl Error for RunTileError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RunTileError::CoreFault { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Reg;

    /// Program: shared[R10] += core-specific value, then halt.
    fn accumulate_program(offset: u32, value: u32) -> Program {
        Program::builder()
            .ldi(Reg::R1, GLOBAL_BASE + offset)
            .ldi(Reg::R2, value)
            .ld(Reg::R3, Reg::R1, 0)
            .add(Reg::R3, Reg::R3, Reg::R2)
            .st(Reg::R3, Reg::R1, 0)
            .halt()
            .build()
            .expect("builds")
    }

    #[test]
    fn single_core_writes_shared_memory() {
        let mut tile = Tile::new();
        tile.load_program(0, &accumulate_program(64, 5))
            .expect("ok");
        let stats = tile.run_until_halt(1000).expect("halts");
        assert_eq!(tile.read_shared_word(64).expect("ok"), 5);
        assert!(stats.retired >= 6);
        assert_eq!(stats.shared_accesses, 2);
    }

    #[test]
    fn fourteen_cores_contend_for_one_bank() {
        // All cores hammer DIFFERENT words of the SAME bank (stride 16 so
        // every word maps to bank 0): serialization must appear as
        // conflicts, and all writes must land.
        let mut tile = Tile::new();
        for core in 0..CORES_PER_TILE {
            let offset = (core as u32) * 16; // word-interleave: bank 0
            tile.load_program(core, &accumulate_program(offset, core as u32 + 1))
                .expect("ok");
        }
        let stats = tile.run_until_halt(10_000).expect("halts");
        for core in 0..CORES_PER_TILE {
            assert_eq!(
                tile.read_shared_word((core as u32) * 16).expect("ok"),
                core as u32 + 1
            );
        }
        assert!(stats.bank_conflicts > 0, "expected bank contention");
    }

    #[test]
    fn different_banks_proceed_in_parallel() {
        // Cores 0–3 target banks 0–3: no conflicts expected.
        let mut tile = Tile::new();
        for core in 0..4 {
            tile.load_program(core, &accumulate_program(core as u32 * 4, 7))
                .expect("ok");
        }
        let stats = tile.run_until_halt(1000).expect("halts");
        assert_eq!(stats.bank_conflicts, 0);
    }

    #[test]
    fn broadcast_program_runs_same_kernel_everywhere() {
        // The SPMD idiom: every core runs the same program, parameterised
        // by a register set before launch (like the JTAG flow would).
        let program = Program::builder()
            .ldi(Reg::R1, GLOBAL_BASE)
            .shl(Reg::R3, Reg::R2, 2) // offset = id * 4
            .add(Reg::R1, Reg::R1, Reg::R3)
            .st(Reg::R2, Reg::R1, 0)
            .halt()
            .build()
            .expect("ok");
        let mut tile = Tile::new();
        tile.broadcast_program(&program);
        for core in 0..CORES_PER_TILE {
            tile.core_mut(core).set_reg(Reg::R2, core as u32);
        }
        tile.run_until_halt(1000).expect("halts");
        for core in 0..CORES_PER_TILE {
            assert_eq!(
                tile.read_shared_word(core as u32 * 4).expect("ok"),
                core as u32
            );
        }
    }

    #[test]
    fn atomic_add_serialises_across_all_cores() {
        // Every core adds its (id+1) to one shared counter 10 times with
        // AMO — no lost updates despite full contention on one bank.
        let program = Program::builder()
            .ldi(Reg::R1, GLOBAL_BASE)
            .ldi(Reg::R3, 10) // iterations
            .ldi(Reg::R0, 0)
            .label("loop")
            .amo_add(Reg::R4, Reg::R1, Reg::R2)
            .addi(Reg::R3, Reg::R3, -1)
            .bne(Reg::R3, Reg::R0, "loop")
            .halt()
            .build()
            .expect("builds");
        let mut tile = Tile::new();
        tile.broadcast_program(&program);
        for core in 0..CORES_PER_TILE {
            tile.core_mut(core).set_reg(Reg::R2, core as u32 + 1);
        }
        tile.run_until_halt(100_000).expect("halts");
        let expected: u32 = (1..=CORES_PER_TILE as u32).map(|v| v * 10).sum();
        assert_eq!(tile.read_shared_word(0).expect("ok"), expected);
    }

    #[test]
    fn amo_on_private_address_faults() {
        let program = Program::builder()
            .ldi(Reg::R1, 64) // private address
            .amo_add(Reg::R2, Reg::R1, Reg::R2)
            .halt()
            .build()
            .expect("builds");
        let mut tile = Tile::new();
        tile.load_program(0, &program).expect("ok");
        let err = tile.run_until_halt(100).expect_err("faults");
        assert!(matches!(err, RunTileError::CoreFault { core: 0, .. }));
    }

    #[test]
    fn local_bank_is_reachable() {
        let mut tile = Tile::new();
        // Local bank offset: 512 KiB.
        let program = Program::builder()
            .ldi(Reg::R1, GLOBAL_BASE + 512 * 1024)
            .ldi(Reg::R2, 99)
            .st(Reg::R2, Reg::R1, 0)
            .halt()
            .build()
            .expect("ok");
        tile.load_program(0, &program).expect("ok");
        tile.run_until_halt(100).expect("halts");
        assert_eq!(tile.read_shared_word(512 * 1024).expect("ok"), 99);
    }

    #[test]
    fn out_of_range_shared_access_faults_the_core() {
        let mut tile = Tile::new();
        let program = Program::builder()
            .ldi(Reg::R1, GLOBAL_BASE + 640 * 1024)
            .ld(Reg::R2, Reg::R1, 0)
            .halt()
            .build()
            .expect("ok");
        tile.load_program(0, &program).expect("ok");
        let err = tile.run_until_halt(100).expect_err("faults");
        assert!(matches!(err, RunTileError::CoreFault { core: 0, .. }));
        assert!(err.to_string().contains("core 0"));
    }

    #[test]
    fn cycle_limit_reported() {
        let mut tile = Tile::new();
        let spin = Program::builder()
            .label("forever")
            .jmp("forever")
            .build()
            .expect("ok");
        tile.load_program(0, &spin).expect("ok");
        assert_eq!(
            tile.run_until_halt(50).expect_err("limit"),
            RunTileError::CycleLimit { max_cycles: 50 }
        );
    }

    #[test]
    fn load_program_rejects_bad_core() {
        let mut tile = Tile::new();
        let p = Program::builder().halt().build().expect("ok");
        assert_eq!(
            tile.load_program(14, &p).expect_err("bad core"),
            LoadProgramError::NoSuchCore { core: 14 }
        );
    }

    #[test]
    fn banked_model_is_slower_but_architecturally_identical() {
        use crate::memory_model::MemoryModelKind;

        let mut fixed = Tile::new();
        let mut banked = Tile::with_memory_model(MemoryModelKind::Banked);
        for tile in [&mut fixed, &mut banked] {
            for core in 0..CORES_PER_TILE {
                let offset = (core as u32) * 16; // all bank 0
                tile.load_program(core, &accumulate_program(offset, core as u32 + 1))
                    .expect("ok");
            }
        }
        let fixed_stats = fixed.run_until_halt(100_000).expect("halts");
        let banked_stats = banked.run_until_halt(100_000).expect("halts");
        // Same architectural result…
        for core in 0..CORES_PER_TILE {
            assert_eq!(
                banked.read_shared_word((core as u32) * 16).expect("ok"),
                fixed.read_shared_word((core as u32) * 16).expect("ok"),
            );
        }
        assert_eq!(banked_stats.retired, fixed_stats.retired);
        // …but row misses make the banked run strictly slower.
        assert!(banked_stats.cycles > fixed_stats.cycles);
        let model = banked.memory_model();
        assert!(model.row_misses() > 0);
        assert_eq!(
            model.row_hits() + model.row_misses(),
            banked_stats.shared_accesses
        );
    }

    #[test]
    fn idle_tile_reports_no_activity() {
        let tile = Tile::new();
        assert!(!tile.any_running());
        let stats = tile.stats();
        assert_eq!(stats.cycles, 0);
        assert_eq!(stats.retired, 0);
    }
}
