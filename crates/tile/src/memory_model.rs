//! Pluggable memory-timing models for the shared banks (the memory
//! fidelity axis of the scenario space).
//!
//! The functional memory — [`MemoryChiplet`](crate::MemoryChiplet) — is
//! deliberately timing-free; everything cycle-accurate lives behind the
//! [`MemoryModel`] trait. Two backends ship:
//!
//! - [`FixedLatency`]: the paper's model. Each bank accepts one word per
//!   cycle; a granted access completes in the same cycle, a denied one
//!   retries next cycle. This wraps the per-cycle [`Crossbar`] arbiter
//!   and is bit-identical to the pre-trait code path by construction.
//! - [`BankedRowBuffer`]: per-bank open row with open-page hits, a
//!   row-miss penalty, a deterministic idle close policy, and per-bank
//!   busy windows during which further requests are denied. Optionally
//!   fronted by a small set-associative [`Tlb`].
//!
//! # The execute-then-stall contract
//!
//! A presented access **mutates the model exactly once**:
//!
//! - [`MemTiming::Granted`] means the access performed *this* cycle.
//!   The model has committed all of its state transitions (row open,
//!   busy window, TLB fill, counters); the caller must perform the data
//!   access now, apply the returned `stall` to the issuing core via
//!   [`CoreSim::apply_stall_cycles`](crate::CoreSim::apply_stall_cycles),
//!   and must **not** present the access again.
//! - [`MemTiming::Denied`] means the bank port (or its busy window)
//!   rejected the access this cycle. Only the conflict counter moved —
//!   row, TLB, and busy state are untouched — so re-presenting next
//!   cycle observes exactly the latency an undenied access would have.
//!
//! This replaces the latency-query-then-apply idiom, which double-counts
//! on stateful backends: querying a row-buffer model flips the open row,
//! so asking twice (query for the latency, then again to apply it) turns
//! one miss into two.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::crossbar::Crossbar;
use crate::memory::{bank_row_of_offset, BANK_COUNT};

/// Extra cycles a row miss costs over an open-page hit (precharge +
/// activate before the column access).
pub const ROW_MISS_PENALTY: u64 = 3;

/// Idle cycles after which a bank's open row auto-closes (the
/// deterministic close policy: a timer, not an LRU heuristic, so the
/// model's behaviour depends only on the access trace).
pub const ROW_OPEN_CYCLES: u64 = 64;

/// Extra cycles a TLB miss costs (the walk of the flat page table the
/// runtime keeps in tile-local SRAM).
pub const TLB_MISS_PENALTY: u64 = 12;

/// Pages are 4 KiB.
pub const PAGE_BYTES: u32 = 4096;

/// TLB geometry: 16 sets × 2 ways = 32 entries (128 KiB of reach).
pub const TLB_SETS: usize = 16;
/// Associativity of the TLB.
pub const TLB_WAYS: usize = 2;

/// A virtual (core-issued) shared-memory offset. The newtype keeps
/// translated and untranslated offsets from mixing inside the TLB path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VAddr(pub u32);

/// A physical (bank-side) shared-memory offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PAddr(pub u32);

/// Timing decision for one presented access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemTiming {
    /// The access performed this cycle; the issuer must absorb `stall`
    /// extra cycles before its next instruction (0 = single-cycle).
    Granted {
        /// Extra stall cycles beyond the granting cycle itself.
        stall: u64,
    },
    /// The bank denied the access this cycle; present it again next
    /// cycle. Nothing but the conflict counter changed.
    Denied,
}

/// Selects a memory-timing backend (the `--memory` bench axis).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum MemoryModelKind {
    /// One word per bank per cycle, no further latency (the paper's
    /// model and the bit-identical default).
    #[default]
    Fixed,
    /// Per-bank open-row timing with busy windows.
    Banked,
    /// [`MemoryModelKind::Banked`] fronted by the set-associative TLB.
    BankedTlb,
}

impl MemoryModelKind {
    /// Parses the `--memory` flag spelling.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "fixed" => Some(MemoryModelKind::Fixed),
            "banked" => Some(MemoryModelKind::Banked),
            "banked+tlb" => Some(MemoryModelKind::BankedTlb),
            _ => None,
        }
    }

    /// The canonical flag spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            MemoryModelKind::Fixed => "fixed",
            MemoryModelKind::Banked => "banked",
            MemoryModelKind::BankedTlb => "banked+tlb",
        }
    }

    /// Builds a fresh model instance of this kind.
    pub fn build(self) -> Box<dyn MemoryModel> {
        match self {
            MemoryModelKind::Fixed => Box::new(FixedLatency::new()),
            MemoryModelKind::Banked => Box::new(BankedRowBuffer::new()),
            MemoryModelKind::BankedTlb => Box::new(BankedRowBuffer::with_tlb()),
        }
    }
}

impl fmt::Display for MemoryModelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Cycle-accurate timing of one tile's five shared banks.
///
/// Implementations are pure timing: the caller owns the data (the
/// [`MemoryChiplet`](crate::MemoryChiplet)) and performs the actual
/// read/write/AMO only on [`MemTiming::Granted`]. `offset` must be a
/// validated, word-aligned tile-local offset (callers validate through
/// [`bank_of_offset`](crate::memory::bank_of_offset) first); `now` is
/// the absolute simulation cycle and must be non-decreasing across
/// calls. Passing absolute cycles (instead of a `begin_cycle` callback)
/// keeps the model correct under activity-driven sparse stepping, where
/// a skipped tile's model simply never hears about the idle cycles.
pub trait MemoryModel: fmt::Debug + Send {
    /// Presents one word access. See the module docs for the
    /// mutate-exactly-once contract.
    fn request(&mut self, offset: u32, now: u64) -> MemTiming;

    /// Which backend this is.
    fn kind(&self) -> MemoryModelKind;

    /// Total granted accesses.
    fn grants(&self) -> u64;

    /// Total denied requests.
    fn conflicts(&self) -> u64;

    /// Open-page hits (0 on latency-free backends).
    fn row_hits(&self) -> u64 {
        0
    }

    /// Row misses (0 on latency-free backends).
    fn row_misses(&self) -> u64 {
        0
    }

    /// TLB hits (0 when no TLB is layered).
    fn tlb_hits(&self) -> u64 {
        0
    }

    /// TLB misses (0 when no TLB is layered).
    fn tlb_misses(&self) -> u64 {
        0
    }

    /// Cycles each bank spent occupied serving granted accesses.
    fn bank_busy_cycles(&self) -> [u64; BANK_COUNT];

    /// A deterministic fingerprint of the model's timing state, folded
    /// into the machine's per-tile determinism digests. Two models that
    /// have seen the same access stream must fingerprint identically;
    /// models whose timing state diverged should (with high probability)
    /// differ. The default suits a stateless model.
    fn state_fingerprint(&self) -> u64 {
        0
    }

    /// Clones the model behind the object (tiles are `Clone`).
    fn clone_box(&self) -> Box<dyn MemoryModel>;
}

/// FNV-1a 64-bit offset basis for [`MemoryModel::state_fingerprint`]
/// implementations.
const FP_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Folds one `u64` into an FNV-1a accumulator (little-endian bytes).
fn fp_mix(mut h: u64, v: u64) -> u64 {
    for b in v.to_le_bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl Clone for Box<dyn MemoryModel> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// The paper's fixed-latency banks: one word per bank per cycle through
/// the [`Crossbar`], zero additional latency. Wrapping the crossbar —
/// rather than reimplementing it — keeps grant/conflict accounting
/// bit-identical to the pre-trait code path.
#[derive(Debug, Clone)]
pub struct FixedLatency {
    xbar: Crossbar,
    /// Cycle the crossbar was last reset for; `u64::MAX` = never. The
    /// lazy reset replaces the external per-cycle `begin_cycle` call so
    /// sparsely stepped tiles need no catch-up loop.
    stamp: u64,
    served: [u64; BANK_COUNT],
}

impl FixedLatency {
    /// Creates an idle fixed-latency model.
    pub fn new() -> Self {
        FixedLatency {
            xbar: Crossbar::new(),
            stamp: u64::MAX,
            served: [0; BANK_COUNT],
        }
    }
}

impl Default for FixedLatency {
    fn default() -> Self {
        FixedLatency::new()
    }
}

impl MemoryModel for FixedLatency {
    fn request(&mut self, offset: u32, now: u64) -> MemTiming {
        if self.stamp != now {
            self.xbar.begin_cycle();
            self.stamp = now;
        }
        let (bank, _row) = bank_row_of_offset(offset).expect("validated shared offset");
        if self.xbar.request(bank) {
            self.served[bank] += 1;
            MemTiming::Granted { stall: 0 }
        } else {
            MemTiming::Denied
        }
    }

    fn kind(&self) -> MemoryModelKind {
        MemoryModelKind::Fixed
    }

    fn grants(&self) -> u64 {
        self.xbar.grants()
    }

    fn conflicts(&self) -> u64 {
        self.xbar.conflicts()
    }

    fn bank_busy_cycles(&self) -> [u64; BANK_COUNT] {
        self.served
    }

    fn state_fingerprint(&self) -> u64 {
        let mut h = fp_mix(FP_OFFSET, self.stamp);
        for &s in &self.served {
            h = fp_mix(h, s);
        }
        fp_mix(fp_mix(h, self.xbar.grants()), self.xbar.conflicts())
    }

    fn clone_box(&self) -> Box<dyn MemoryModel> {
        Box::new(self.clone())
    }
}

/// Row-buffer timing: each bank holds one open row; hitting it costs the
/// base cycle, missing it adds [`ROW_MISS_PENALTY`] cycles during which
/// the bank is busy and denies further requests. Rows auto-close after
/// [`ROW_OPEN_CYCLES`] idle cycles.
///
/// State machine per bank (all transitions keyed on absolute `now`):
///
/// ```text
///            request, row == open, fresh        request, otherwise
/// (closed) ────────────── n/a           (any) ──────────────────────┐
///    ▲                                    │ hit: stall 0            │ miss
///    │ idle > ROW_OPEN_CYCLES             ▼                         ▼
///    └──────────────────────────── (open row r) ◄─── busy until now+1+stall
/// ```
#[derive(Debug, Clone)]
pub struct BankedRowBuffer {
    /// Cycle of the last grant per bank (`u64::MAX` = never): both the
    /// one-port-per-cycle check and the idle-close timer key off it.
    last_grant: [u64; BANK_COUNT],
    /// Bank unavailable strictly before this cycle.
    busy_until: [u64; BANK_COUNT],
    open_row: [Option<u32>; BANK_COUNT],
    busy_cycles: [u64; BANK_COUNT],
    grants: u64,
    conflicts: u64,
    row_hits: u64,
    row_misses: u64,
    tlb: Option<Tlb>,
}

impl BankedRowBuffer {
    /// Creates the model with all rows closed and no TLB.
    pub fn new() -> Self {
        BankedRowBuffer {
            last_grant: [u64::MAX; BANK_COUNT],
            busy_until: [0; BANK_COUNT],
            open_row: [None; BANK_COUNT],
            busy_cycles: [0; BANK_COUNT],
            grants: 0,
            conflicts: 0,
            row_hits: 0,
            row_misses: 0,
            tlb: None,
        }
    }

    /// Creates the model fronted by the set-associative [`Tlb`].
    pub fn with_tlb() -> Self {
        BankedRowBuffer {
            tlb: Some(Tlb::new()),
            ..BankedRowBuffer::new()
        }
    }

    /// The row currently open in `bank`, if any (test/telemetry access).
    pub fn open_row(&self, bank: usize) -> Option<u32> {
        self.open_row[bank]
    }
}

impl Default for BankedRowBuffer {
    fn default() -> Self {
        BankedRowBuffer::new()
    }
}

impl MemoryModel for BankedRowBuffer {
    fn request(&mut self, offset: u32, now: u64) -> MemTiming {
        let (bank, row) = bank_row_of_offset(offset).expect("validated shared offset");
        // Busy window or port already granted this cycle: deny without
        // touching row or TLB state (the mutate-once rule).
        if now < self.busy_until[bank] || self.last_grant[bank] == now {
            self.conflicts += 1;
            return MemTiming::Denied;
        }
        let fresh = self.last_grant[bank] != u64::MAX
            && now.saturating_sub(self.last_grant[bank]) <= ROW_OPEN_CYCLES;
        let mut stall = if self.open_row[bank] == Some(row) && fresh {
            self.row_hits += 1;
            0
        } else {
            self.row_misses += 1;
            ROW_MISS_PENALTY
        };
        if let Some(tlb) = &mut self.tlb {
            let (_pa, penalty) = tlb.translate(VAddr(offset));
            stall += penalty;
        }
        self.open_row[bank] = Some(row);
        self.last_grant[bank] = now;
        self.busy_until[bank] = now + 1 + stall;
        self.busy_cycles[bank] += 1 + stall;
        self.grants += 1;
        MemTiming::Granted { stall }
    }

    fn kind(&self) -> MemoryModelKind {
        if self.tlb.is_some() {
            MemoryModelKind::BankedTlb
        } else {
            MemoryModelKind::Banked
        }
    }

    fn grants(&self) -> u64 {
        self.grants
    }

    fn conflicts(&self) -> u64 {
        self.conflicts
    }

    fn row_hits(&self) -> u64 {
        self.row_hits
    }

    fn row_misses(&self) -> u64 {
        self.row_misses
    }

    fn tlb_hits(&self) -> u64 {
        self.tlb.as_ref().map_or(0, |t| t.hits)
    }

    fn tlb_misses(&self) -> u64 {
        self.tlb.as_ref().map_or(0, |t| t.misses)
    }

    fn bank_busy_cycles(&self) -> [u64; BANK_COUNT] {
        self.busy_cycles
    }

    fn state_fingerprint(&self) -> u64 {
        let mut h = FP_OFFSET;
        for bank in 0..BANK_COUNT {
            h = fp_mix(h, self.last_grant[bank]);
            h = fp_mix(h, self.busy_until[bank]);
            h = fp_mix(h, self.busy_cycles[bank]);
            h = fp_mix(h, self.open_row[bank].map_or(u64::MAX, u64::from));
        }
        h = fp_mix(h, self.grants);
        h = fp_mix(h, self.conflicts);
        h = fp_mix(h, self.row_hits);
        h = fp_mix(h, self.row_misses);
        if let Some(tlb) = &self.tlb {
            h = fp_mix(h, tlb.hits);
            h = fp_mix(h, tlb.misses);
            for set in &tlb.sets {
                for way in set {
                    h = fp_mix(h, way.map_or(u64::MAX, u64::from));
                }
            }
        }
        h
    }

    fn clone_box(&self) -> Box<dyn MemoryModel> {
        Box::new(self.clone())
    }
}

/// A small set-associative TLB ([`TLB_SETS`] × [`TLB_WAYS`]) over 4 KiB
/// pages. Translation is identity — the shared space is physically
/// mapped — so the TLB is a pure timing layer: a hit is free, a miss
/// costs [`TLB_MISS_PENALTY`] and fills the LRU way. It only moves on
/// granted accesses (the row-buffer denies *before* translating), which
/// keeps the mutate-once rule intact.
#[derive(Debug, Clone)]
pub struct Tlb {
    /// Per set, most-recently-used first: the virtual page numbers held.
    sets: [[Option<u32>; TLB_WAYS]; TLB_SETS],
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// Creates an empty (all-invalid) TLB.
    pub fn new() -> Self {
        Tlb {
            sets: [[None; TLB_WAYS]; TLB_SETS],
            hits: 0,
            misses: 0,
        }
    }

    /// Translates one virtual offset, returning the physical offset and
    /// the stall penalty (0 on a hit). Mutates the LRU order / fills on
    /// every call, so call it exactly once per granted access.
    pub fn translate(&mut self, vaddr: VAddr) -> (PAddr, u64) {
        let page = vaddr.0 / PAGE_BYTES;
        let set = &mut self.sets[page as usize % TLB_SETS];
        let penalty = if let Some(way) = set.iter().position(|&e| e == Some(page)) {
            self.hits += 1;
            set[..=way].rotate_right(1); // promote to MRU
            0
        } else {
            self.misses += 1;
            set.rotate_right(1); // evict the LRU way
            set[0] = Some(page);
            TLB_MISS_PENALTY
        };
        (PAddr(vaddr.0), penalty)
    }
}

impl Default for Tlb {
    fn default() -> Self {
        Tlb::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::ROW_BYTES;

    /// Word offsets guaranteed to hit bank 0: the global region
    /// word-interleaves, so stride 16 stays on one bank.
    fn bank0(word: u32) -> u32 {
        word * 16
    }

    #[test]
    fn fixed_latency_matches_crossbar_semantics() {
        let mut m = FixedLatency::new();
        assert_eq!(m.request(bank0(0), 1), MemTiming::Granted { stall: 0 });
        // Same bank, same cycle: denied (one port per cycle).
        assert_eq!(m.request(bank0(1), 1), MemTiming::Denied);
        // Different bank, same cycle: granted.
        assert_eq!(m.request(4, 1), MemTiming::Granted { stall: 0 });
        // Next cycle the port frees up again.
        assert_eq!(m.request(bank0(1), 2), MemTiming::Granted { stall: 0 });
        assert_eq!(m.grants(), 3);
        assert_eq!(m.conflicts(), 1);
        assert_eq!(m.row_hits() + m.row_misses(), 0);
    }

    #[test]
    fn banked_first_touch_misses_then_hits() {
        let mut m = BankedRowBuffer::new();
        let miss = m.request(bank0(0), 1);
        assert_eq!(
            miss,
            MemTiming::Granted {
                stall: ROW_MISS_PENALTY
            }
        );
        // The bank is busy for the whole miss window.
        let retry_at = 1 + 1 + ROW_MISS_PENALTY;
        assert_eq!(m.request(bank0(1), retry_at - 1), MemTiming::Denied);
        // Same row once the window expires: an open-page hit.
        assert_eq!(
            m.request(bank0(1), retry_at),
            MemTiming::Granted { stall: 0 }
        );
        assert_eq!(m.row_hits(), 1);
        assert_eq!(m.row_misses(), 1);
    }

    #[test]
    fn banked_row_change_misses() {
        let mut m = BankedRowBuffer::new();
        let other_row = (ROW_BYTES as u32) * 4; // same bank, next row
        assert_eq!(crate::memory::bank_row_of_offset(other_row).unwrap().0, 0);
        let _ = m.request(bank0(0), 1);
        let t = 2 + ROW_MISS_PENALTY;
        assert_eq!(
            m.request(other_row, t),
            MemTiming::Granted {
                stall: ROW_MISS_PENALTY
            }
        );
        assert_eq!(m.row_misses(), 2);
    }

    #[test]
    fn banked_row_auto_closes_after_idle_window() {
        let mut m = BankedRowBuffer::new();
        let _ = m.request(bank0(0), 1);
        // Within the close window: still open.
        let t1 = 1 + ROW_OPEN_CYCLES;
        assert_eq!(m.request(bank0(1), t1), MemTiming::Granted { stall: 0 });
        // Idle past the window: the row closed, so the same row misses.
        let t2 = t1 + ROW_OPEN_CYCLES + 1;
        assert_eq!(
            m.request(bank0(2), t2),
            MemTiming::Granted {
                stall: ROW_MISS_PENALTY
            }
        );
    }

    /// The satellite regression: a denied request must not change the
    /// latency a later grant observes. Deny the bank k times (busy
    /// window + same-cycle port) and the eventual grant still sees
    /// exactly the stall a never-denied clone sees.
    #[test]
    fn repeated_denied_queries_cannot_change_observed_latency() {
        let mut denied = BankedRowBuffer::new();
        let mut reference = BankedRowBuffer::new();
        let _ = denied.request(bank0(0), 1); // opens row 0, busy until 5
        let _ = reference.request(bank0(0), 1);
        // Hammer a *different row* of the same bank while busy: every
        // presentation is denied and must leave row state untouched.
        let other_row = (ROW_BYTES as u32) * 4;
        for now in 2..5 {
            assert_eq!(denied.request(other_row, now), MemTiming::Denied);
        }
        let after_denials = denied.request(bank0(1), 5);
        let undisturbed = reference.request(bank0(1), 5);
        assert_eq!(after_denials, undisturbed);
        assert_eq!(after_denials, MemTiming::Granted { stall: 0 });
        // Only the conflict counter differs between the two histories.
        assert_eq!(denied.row_hits(), reference.row_hits());
        assert_eq!(denied.row_misses(), reference.row_misses());
        assert_eq!(denied.grants(), reference.grants());
        assert_eq!(denied.conflicts(), reference.conflicts() + 3);
    }

    #[test]
    fn tlb_hits_after_first_touch_and_evicts_lru() {
        let mut tlb = Tlb::new();
        let (pa, p0) = tlb.translate(VAddr(0));
        assert_eq!(pa, PAddr(0)); // identity mapping
        assert_eq!(p0, TLB_MISS_PENALTY);
        assert_eq!(tlb.translate(VAddr(4)).1, 0); // same page: hit
                                                  // Two more pages in the same set (stride = TLB_SETS pages) evict
                                                  // page 0 from the 2-way set.
        let stride = PAGE_BYTES * TLB_SETS as u32;
        assert_eq!(tlb.translate(VAddr(stride)).1, TLB_MISS_PENALTY);
        assert_eq!(tlb.translate(VAddr(2 * stride)).1, TLB_MISS_PENALTY);
        assert_eq!(tlb.translate(VAddr(0)).1, TLB_MISS_PENALTY);
        assert_eq!(tlb.hits, 1);
        assert_eq!(tlb.misses, 4);
    }

    #[test]
    fn banked_tlb_adds_walk_penalty_once_per_page() {
        let mut m = BankedRowBuffer::with_tlb();
        let first = m.request(bank0(0), 1);
        assert_eq!(
            first,
            MemTiming::Granted {
                stall: ROW_MISS_PENALTY + TLB_MISS_PENALTY
            }
        );
        let t = 2 + ROW_MISS_PENALTY + TLB_MISS_PENALTY;
        // Same page, same row: both layers hit.
        assert_eq!(m.request(bank0(1), t), MemTiming::Granted { stall: 0 });
        assert_eq!(m.tlb_hits(), 1);
        assert_eq!(m.tlb_misses(), 1);
    }

    #[test]
    fn kind_round_trips_through_parse() {
        for kind in [
            MemoryModelKind::Fixed,
            MemoryModelKind::Banked,
            MemoryModelKind::BankedTlb,
        ] {
            assert_eq!(MemoryModelKind::parse(kind.as_str()), Some(kind));
            assert_eq!(kind.build().kind(), kind);
        }
        assert_eq!(MemoryModelKind::parse("dram"), None);
    }

    #[test]
    fn busy_cycles_track_grant_plus_stall() {
        let mut m = BankedRowBuffer::new();
        let _ = m.request(bank0(0), 1); // miss: 1 + penalty
        let _ = m.request(bank0(1), 2 + ROW_MISS_PENALTY); // hit: 1
        assert_eq!(m.bank_busy_cycles()[0], 2 + ROW_MISS_PENALTY);
        assert_eq!(m.bank_busy_cycles()[1..], [0, 0, 0, 0]);
    }
}
