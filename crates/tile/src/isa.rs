//! The load/store instruction set interpreted by the core model.
//!
//! The real chiplet uses ARM Cortex-M3 cores; licensing obviously prevents
//! shipping those, so the model runs a deliberately small RISC ISA with
//! the same architectural character: 16 registers, word-addressed loads
//! and stores, compare-and-branch, one instruction per cycle except
//! memory stalls. Programs are built with [`ProgramBuilder`], which
//! resolves symbolic labels so test kernels stay readable.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

/// One of the 16 general-purpose registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Reg {
    R0,
    R1,
    R2,
    R3,
    R4,
    R5,
    R6,
    R7,
    R8,
    R9,
    R10,
    R11,
    R12,
    R13,
    R14,
    R15,
}

impl Reg {
    /// Register index 0..16.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// All registers in order.
    pub const ALL: [Reg; 16] = [
        Reg::R0,
        Reg::R1,
        Reg::R2,
        Reg::R3,
        Reg::R4,
        Reg::R5,
        Reg::R6,
        Reg::R7,
        Reg::R8,
        Reg::R9,
        Reg::R10,
        Reg::R11,
        Reg::R12,
        Reg::R13,
        Reg::R14,
        Reg::R15,
    ];
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.index())
    }
}

/// A fully resolved instruction (branch targets are instruction indices).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Instr {
    /// `rd ← imm`
    Ldi(Reg, u32),
    /// `rd ← rs`
    Mov(Reg, Reg),
    /// `rd ← rs + rt` (wrapping)
    Add(Reg, Reg, Reg),
    /// `rd ← rs + imm` (wrapping, signed immediate)
    Addi(Reg, Reg, i32),
    /// `rd ← rs − rt` (wrapping)
    Sub(Reg, Reg, Reg),
    /// `rd ← rs × rt` (wrapping)
    Mul(Reg, Reg, Reg),
    /// `rd ← rs & rt`
    And(Reg, Reg, Reg),
    /// `rd ← rs | rt`
    Or(Reg, Reg, Reg),
    /// `rd ← rs ^ rt`
    Xor(Reg, Reg, Reg),
    /// `rd ← rs << imm`
    Shl(Reg, Reg, u8),
    /// `rd ← rs >> imm` (logical)
    Shr(Reg, Reg, u8),
    /// `rd ← mem[rs + offset]` (word)
    Ld(Reg, Reg, i32),
    /// `mem[raddr + offset] ← rval` (word)
    St(Reg, Reg, i32),
    /// Branch to `target` when `rs == rt`.
    Beq(Reg, Reg, usize),
    /// Branch to `target` when `rs != rt`.
    Bne(Reg, Reg, usize),
    /// Branch to `target` when `rs < rt` (unsigned).
    Blt(Reg, Reg, usize),
    /// Unconditional jump.
    Jmp(usize),
    /// Atomic fetch-and-add on shared memory: `rd ← mem[raddr]` and
    /// `mem[raddr] += rval`, as one indivisible crossbar transaction.
    /// Only valid on shared addresses (the crossbar is the serialisation
    /// point; private SRAM needs no atomics).
    AmoAdd(Reg, Reg, Reg),
    /// Stop the core.
    Halt,
}

/// An executable program: a resolved instruction sequence.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Program {
    instrs: Vec<Instr>,
}

impl Program {
    /// Starts building a program.
    pub fn builder() -> ProgramBuilder {
        ProgramBuilder::default()
    }

    /// The resolved instructions.
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }
}

/// Label-aware builder for [`Program`].
///
/// # Examples
///
/// ```
/// use wsp_tile::isa::{Program, Reg};
///
/// // r1 = 10 + 9 + … + 1 via a countdown loop.
/// let program = Program::builder()
///     .ldi(Reg::R1, 0)
///     .ldi(Reg::R2, 10)
///     .ldi(Reg::R0, 0)
///     .label("loop")
///     .add(Reg::R1, Reg::R1, Reg::R2)
///     .addi(Reg::R2, Reg::R2, -1)
///     .bne(Reg::R2, Reg::R0, "loop")
///     .halt()
///     .build()?;
/// assert_eq!(program.len(), 7);
/// # Ok::<(), wsp_tile::isa::BuildProgramError>(())
/// ```
#[derive(Debug, Default, Clone)]
pub struct ProgramBuilder {
    /// Instructions with unresolved label operands.
    pending: Vec<PendingInstr>,
    labels: HashMap<String, usize>,
}

#[derive(Debug, Clone)]
enum PendingInstr {
    Ready(Instr),
    Beq(Reg, Reg, String),
    Bne(Reg, Reg, String),
    Blt(Reg, Reg, String),
    Jmp(String),
}

impl ProgramBuilder {
    /// Defines a label at the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label was already defined.
    pub fn label(mut self, name: &str) -> Self {
        let prev = self.labels.insert(name.to_string(), self.pending.len());
        assert!(prev.is_none(), "label {name:?} defined twice");
        self
    }

    /// `rd ← imm`.
    pub fn ldi(mut self, rd: Reg, imm: u32) -> Self {
        self.pending.push(PendingInstr::Ready(Instr::Ldi(rd, imm)));
        self
    }

    /// `rd ← rs`.
    pub fn mov(mut self, rd: Reg, rs: Reg) -> Self {
        self.pending.push(PendingInstr::Ready(Instr::Mov(rd, rs)));
        self
    }

    /// `rd ← rs + rt`.
    pub fn add(mut self, rd: Reg, rs: Reg, rt: Reg) -> Self {
        self.pending
            .push(PendingInstr::Ready(Instr::Add(rd, rs, rt)));
        self
    }

    /// `rd ← rs + imm`.
    pub fn addi(mut self, rd: Reg, rs: Reg, imm: i32) -> Self {
        self.pending
            .push(PendingInstr::Ready(Instr::Addi(rd, rs, imm)));
        self
    }

    /// `rd ← rs − rt`.
    pub fn sub(mut self, rd: Reg, rs: Reg, rt: Reg) -> Self {
        self.pending
            .push(PendingInstr::Ready(Instr::Sub(rd, rs, rt)));
        self
    }

    /// `rd ← rs × rt`.
    pub fn mul(mut self, rd: Reg, rs: Reg, rt: Reg) -> Self {
        self.pending
            .push(PendingInstr::Ready(Instr::Mul(rd, rs, rt)));
        self
    }

    /// `rd ← rs & rt`.
    pub fn and(mut self, rd: Reg, rs: Reg, rt: Reg) -> Self {
        self.pending
            .push(PendingInstr::Ready(Instr::And(rd, rs, rt)));
        self
    }

    /// `rd ← rs | rt`.
    pub fn or(mut self, rd: Reg, rs: Reg, rt: Reg) -> Self {
        self.pending
            .push(PendingInstr::Ready(Instr::Or(rd, rs, rt)));
        self
    }

    /// `rd ← rs ^ rt`.
    pub fn xor(mut self, rd: Reg, rs: Reg, rt: Reg) -> Self {
        self.pending
            .push(PendingInstr::Ready(Instr::Xor(rd, rs, rt)));
        self
    }

    /// `rd ← rs << imm`.
    pub fn shl(mut self, rd: Reg, rs: Reg, imm: u8) -> Self {
        self.pending
            .push(PendingInstr::Ready(Instr::Shl(rd, rs, imm)));
        self
    }

    /// `rd ← rs >> imm`.
    pub fn shr(mut self, rd: Reg, rs: Reg, imm: u8) -> Self {
        self.pending
            .push(PendingInstr::Ready(Instr::Shr(rd, rs, imm)));
        self
    }

    /// `rd ← mem[rs + offset]`.
    pub fn ld(mut self, rd: Reg, rs: Reg, offset: i32) -> Self {
        self.pending
            .push(PendingInstr::Ready(Instr::Ld(rd, rs, offset)));
        self
    }

    /// `mem[raddr + offset] ← rval`.
    pub fn st(mut self, rval: Reg, raddr: Reg, offset: i32) -> Self {
        self.pending
            .push(PendingInstr::Ready(Instr::St(rval, raddr, offset)));
        self
    }

    /// Branch to `label` when `rs == rt`.
    pub fn beq(mut self, rs: Reg, rt: Reg, label: &str) -> Self {
        self.pending
            .push(PendingInstr::Beq(rs, rt, label.to_string()));
        self
    }

    /// Branch to `label` when `rs != rt`.
    pub fn bne(mut self, rs: Reg, rt: Reg, label: &str) -> Self {
        self.pending
            .push(PendingInstr::Bne(rs, rt, label.to_string()));
        self
    }

    /// Branch to `label` when `rs < rt` (unsigned).
    pub fn blt(mut self, rs: Reg, rt: Reg, label: &str) -> Self {
        self.pending
            .push(PendingInstr::Blt(rs, rt, label.to_string()));
        self
    }

    /// Unconditional jump to `label`.
    pub fn jmp(mut self, label: &str) -> Self {
        self.pending.push(PendingInstr::Jmp(label.to_string()));
        self
    }

    /// Atomic fetch-and-add: `rd ← mem[raddr]; mem[raddr] += rval`.
    pub fn amo_add(mut self, rd: Reg, raddr: Reg, rval: Reg) -> Self {
        self.pending
            .push(PendingInstr::Ready(Instr::AmoAdd(rd, raddr, rval)));
        self
    }

    /// Stop the core.
    pub fn halt(mut self) -> Self {
        self.pending.push(PendingInstr::Ready(Instr::Halt));
        self
    }

    /// Resolves labels and produces the program.
    ///
    /// # Errors
    ///
    /// Returns [`BuildProgramError`] when a branch references an undefined
    /// label or the program is empty.
    pub fn build(self) -> Result<Program, BuildProgramError> {
        if self.pending.is_empty() {
            return Err(BuildProgramError::Empty);
        }
        let resolve = |name: &str| {
            self.labels
                .get(name)
                .copied()
                .ok_or_else(|| BuildProgramError::UndefinedLabel {
                    label: name.to_string(),
                })
        };
        let instrs = self
            .pending
            .iter()
            .map(|p| {
                Ok(match p {
                    PendingInstr::Ready(i) => *i,
                    PendingInstr::Beq(a, b, l) => Instr::Beq(*a, *b, resolve(l)?),
                    PendingInstr::Bne(a, b, l) => Instr::Bne(*a, *b, resolve(l)?),
                    PendingInstr::Blt(a, b, l) => Instr::Blt(*a, *b, resolve(l)?),
                    PendingInstr::Jmp(l) => Instr::Jmp(resolve(l)?),
                })
            })
            .collect::<Result<Vec<_>, BuildProgramError>>()?;
        Ok(Program { instrs })
    }
}

/// Failure modes of [`ProgramBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildProgramError {
    /// The program contained no instructions.
    Empty,
    /// A branch referenced a label that was never defined.
    UndefinedLabel {
        /// The missing label.
        label: String,
    },
}

impl fmt::Display for BuildProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildProgramError::Empty => f.write_str("program has no instructions"),
            BuildProgramError::UndefinedLabel { label } => {
                write!(f, "branch references undefined label {label:?}")
            }
        }
    }
}

impl Error for BuildProgramError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_resolves_labels() {
        let program = Program::builder()
            .ldi(Reg::R1, 5)
            .label("top")
            .addi(Reg::R1, Reg::R1, -1)
            .bne(Reg::R1, Reg::R0, "top")
            .halt()
            .build()
            .expect("builds");
        assert_eq!(program.len(), 4);
        assert_eq!(program.instrs()[2], Instr::Bne(Reg::R1, Reg::R0, 1));
    }

    #[test]
    fn undefined_label_is_an_error() {
        let err = Program::builder()
            .jmp("nowhere")
            .build()
            .expect_err("must fail");
        assert_eq!(
            err,
            BuildProgramError::UndefinedLabel {
                label: "nowhere".into()
            }
        );
        assert!(err.to_string().contains("nowhere"));
    }

    #[test]
    fn empty_program_is_an_error() {
        assert_eq!(
            Program::builder().build().unwrap_err(),
            BuildProgramError::Empty
        );
    }

    #[test]
    #[should_panic(expected = "defined twice")]
    fn duplicate_label_panics() {
        let _ = Program::builder().label("a").halt().label("a");
    }

    #[test]
    fn forward_references_work() {
        let program = Program::builder()
            .beq(Reg::R0, Reg::R0, "end")
            .ldi(Reg::R1, 99)
            .label("end")
            .halt()
            .build()
            .expect("builds");
        assert_eq!(program.instrs()[0], Instr::Beq(Reg::R0, Reg::R0, 2));
    }

    #[test]
    fn register_indices_and_display() {
        assert_eq!(Reg::R0.index(), 0);
        assert_eq!(Reg::R15.index(), 15);
        assert_eq!(Reg::R7.to_string(), "r7");
        assert_eq!(Reg::ALL.len(), 16);
    }

    #[test]
    fn program_is_empty_accessors() {
        let p = Program::builder().halt().build().expect("ok");
        assert!(!p.is_empty());
        assert_eq!(p.len(), 1);
    }
}
