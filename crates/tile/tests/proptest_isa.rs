//! Differential property test of the core ISA interpreter: random
//! straight-line programs are executed both by [`wsp_tile::CoreSim`] and
//! by a direct Rust evaluator; register files must agree exactly.

use proptest::prelude::*;
use wsp_tile::isa::{Instr, Program, Reg};
use wsp_tile::{BusGrant, CoreSim, CoreState};

/// A branch-free, memory-free instruction with operands drawn from the
/// low registers.
fn arb_alu_instr() -> impl Strategy<Value = Instr> {
    let reg = prop_oneof![
        Just(Reg::R0),
        Just(Reg::R1),
        Just(Reg::R2),
        Just(Reg::R3),
        Just(Reg::R4),
        Just(Reg::R5),
        Just(Reg::R6),
        Just(Reg::R7),
    ];
    prop_oneof![
        (reg.clone(), any::<u32>()).prop_map(|(rd, imm)| Instr::Ldi(rd, imm)),
        (reg.clone(), reg.clone()).prop_map(|(rd, rs)| Instr::Mov(rd, rs)),
        (reg.clone(), reg.clone(), reg.clone()).prop_map(|(a, b, c)| Instr::Add(a, b, c)),
        (reg.clone(), reg.clone(), any::<i32>()).prop_map(|(a, b, i)| Instr::Addi(a, b, i)),
        (reg.clone(), reg.clone(), reg.clone()).prop_map(|(a, b, c)| Instr::Sub(a, b, c)),
        (reg.clone(), reg.clone(), reg.clone()).prop_map(|(a, b, c)| Instr::Mul(a, b, c)),
        (reg.clone(), reg.clone(), reg.clone()).prop_map(|(a, b, c)| Instr::And(a, b, c)),
        (reg.clone(), reg.clone(), reg.clone()).prop_map(|(a, b, c)| Instr::Or(a, b, c)),
        (reg.clone(), reg.clone(), reg.clone()).prop_map(|(a, b, c)| Instr::Xor(a, b, c)),
        (reg.clone(), reg.clone(), 0u8..31).prop_map(|(a, b, i)| Instr::Shl(a, b, i)),
        (reg, 0u8..31).prop_map(|(a, i)| Instr::Shr(a, a, i)),
    ]
}

/// Direct evaluation of a straight-line instruction sequence.
fn evaluate(instrs: &[Instr]) -> [u32; 16] {
    let mut regs = [0u32; 16];
    for &instr in instrs {
        match instr {
            Instr::Ldi(rd, imm) => regs[rd.index()] = imm,
            Instr::Mov(rd, rs) => regs[rd.index()] = regs[rs.index()],
            Instr::Add(rd, rs, rt) => {
                regs[rd.index()] = regs[rs.index()].wrapping_add(regs[rt.index()])
            }
            Instr::Addi(rd, rs, imm) => {
                regs[rd.index()] = regs[rs.index()].wrapping_add_signed(imm)
            }
            Instr::Sub(rd, rs, rt) => {
                regs[rd.index()] = regs[rs.index()].wrapping_sub(regs[rt.index()])
            }
            Instr::Mul(rd, rs, rt) => {
                regs[rd.index()] = regs[rs.index()].wrapping_mul(regs[rt.index()])
            }
            Instr::And(rd, rs, rt) => regs[rd.index()] = regs[rs.index()] & regs[rt.index()],
            Instr::Or(rd, rs, rt) => regs[rd.index()] = regs[rs.index()] | regs[rt.index()],
            Instr::Xor(rd, rs, rt) => regs[rd.index()] = regs[rs.index()] ^ regs[rt.index()],
            Instr::Shl(rd, rs, imm) => {
                regs[rd.index()] = regs[rs.index()].wrapping_shl(u32::from(imm))
            }
            Instr::Shr(rd, rs, imm) => {
                regs[rd.index()] = regs[rs.index()].wrapping_shr(u32::from(imm))
            }
            _ => unreachable!("strategy only emits ALU instructions"),
        }
    }
    regs
}

/// Builds a `Program` from raw instructions plus a trailing `Halt`.
fn program_of(instrs: &[Instr]) -> Program {
    let mut builder = Program::builder();
    for &instr in instrs {
        builder = match instr {
            Instr::Ldi(rd, imm) => builder.ldi(rd, imm),
            Instr::Mov(rd, rs) => builder.mov(rd, rs),
            Instr::Add(a, b, c) => builder.add(a, b, c),
            Instr::Addi(a, b, i) => builder.addi(a, b, i),
            Instr::Sub(a, b, c) => builder.sub(a, b, c),
            Instr::Mul(a, b, c) => builder.mul(a, b, c),
            Instr::And(a, b, c) => builder.and(a, b, c),
            Instr::Or(a, b, c) => builder.or(a, b, c),
            Instr::Xor(a, b, c) => builder.xor(a, b, c),
            Instr::Shl(a, b, i) => builder.shl(a, b, i),
            Instr::Shr(a, b, i) => builder.shr(a, b, i),
            _ => unreachable!("strategy only emits ALU instructions"),
        };
    }
    builder.halt().build().expect("non-empty")
}

proptest! {
    /// The interpreter agrees with direct evaluation on every random
    /// straight-line program, and retires exactly one instruction per
    /// cycle (plus the halt).
    #[test]
    fn interpreter_matches_direct_evaluation(
        instrs in proptest::collection::vec(arb_alu_instr(), 1..60),
    ) {
        let expected = evaluate(&instrs);
        let mut core = CoreSim::new();
        core.load_program(&program_of(&instrs));
        let mut cycles = 0u64;
        while core.state() == CoreState::Running {
            core.step(|_| Ok(BusGrant::Stalled)).expect("no fault");
            cycles += 1;
            prop_assert!(cycles < 1000, "did not halt");
        }
        for r in Reg::ALL {
            prop_assert_eq!(core.reg(r), expected[r.index()], "{}", r);
        }
        prop_assert_eq!(core.stats().retired, instrs.len() as u64 + 1);
        prop_assert_eq!(core.stats().cycles, instrs.len() as u64 + 1);
    }

    /// Two fresh cores running the same program end with identical
    /// register files (execution is fully deterministic).
    #[test]
    fn execution_is_deterministic(
        instrs in proptest::collection::vec(arb_alu_instr(), 1..30),
    ) {
        let program = program_of(&instrs);
        let run = || {
            let mut core = CoreSim::new();
            core.load_program(&program);
            while core.state() == CoreState::Running {
                core.step(|_| Ok(BusGrant::Stalled)).expect("ok");
            }
            Reg::ALL.iter().map(|&r| core.reg(r)).collect::<Vec<u32>>()
        };
        prop_assert_eq!(run(), run());
    }
}
