//! Property tests over the topology foundations.

use proptest::prelude::*;
use wsp_common::seeded_rng;
use wsp_topo::{FaultMap, ReticleGrid, TileArray, TileCoord, DIRECTIONS};

fn arb_array() -> impl Strategy<Value = TileArray> {
    (1u16..=40, 1u16..=40).prop_map(|(c, r)| TileArray::new(c, r))
}

proptest! {
    /// Linear index ↔ coordinate mapping is a bijection.
    #[test]
    fn index_coord_bijection(array in arb_array()) {
        for (i, tile) in array.tiles().enumerate() {
            prop_assert_eq!(array.index_of(tile), i);
            prop_assert_eq!(array.coord_of(i), tile);
        }
    }

    /// Neighbour relations are symmetric and stay in bounds.
    #[test]
    fn neighbors_are_symmetric(array in arb_array()) {
        for tile in array.tiles() {
            for dir in DIRECTIONS {
                if let Some(nb) = array.neighbor(tile, dir) {
                    prop_assert!(array.contains(nb));
                    prop_assert_eq!(array.neighbor(nb, dir.opposite()), Some(tile));
                }
            }
        }
    }

    /// Fault-map marking is exact: exactly the sampled tiles are faulty.
    #[test]
    fn sampled_faults_are_exact(seed in 0u64..1000, count in 0usize..64) {
        let array = TileArray::new(8, 8);
        let mut rng = seeded_rng(seed);
        let map = FaultMap::sample_uniform(array, count, &mut rng);
        prop_assert_eq!(map.fault_count(), count);
        prop_assert_eq!(map.healthy_count(), 64 - count);
        prop_assert_eq!(map.faulty_tiles().count(), count);
        let via_flags = array.tiles().filter(|&t| map.is_faulty(t)).count();
        prop_assert_eq!(via_flags, count);
    }

    /// Union of fault maps equals the set union of their fault sets.
    #[test]
    fn union_is_set_union(seed in 0u64..500) {
        let array = TileArray::new(8, 8);
        let mut rng = seeded_rng(seed);
        let a = FaultMap::sample_uniform(array, 10, &mut rng);
        let b = FaultMap::sample_uniform(array, 10, &mut rng);
        let mut u = a.clone();
        u.union_with(&b);
        for t in array.tiles() {
            prop_assert_eq!(u.is_faulty(t), a.is_faulty(t) || b.is_faulty(t));
        }
    }

    /// Every tile belongs to exactly one reticle, and crossing counts are
    /// consistent with reticle membership.
    #[test]
    fn reticle_tiling_partitions_the_wafer(array in arb_array()) {
        let grid = ReticleGrid::paper_grid(array);
        for tile in array.tiles() {
            let r = grid.reticle_of(tile);
            prop_assert!(r.x < grid.reticle_cols());
            prop_assert!(r.y < grid.reticle_rows());
        }
        // Adjacent tiles cross a boundary iff their reticles differ.
        for tile in array.tiles() {
            for dir in DIRECTIONS {
                if let Some(nb) = array.neighbor(tile, dir) {
                    prop_assert_eq!(
                        grid.crosses_boundary(tile, nb),
                        grid.reticle_of(tile) != grid.reticle_of(nb)
                    );
                }
            }
        }
    }

    /// Manhattan distance is a metric (symmetry + triangle inequality).
    #[test]
    fn manhattan_is_a_metric(
        ax in 0u16..32, ay in 0u16..32,
        bx in 0u16..32, by in 0u16..32,
        cx in 0u16..32, cy in 0u16..32,
    ) {
        let a = TileCoord::new(ax, ay);
        let b = TileCoord::new(bx, by);
        let c = TileCoord::new(cx, cy);
        prop_assert_eq!(a.manhattan_distance(b), b.manhattan_distance(a));
        prop_assert_eq!(a.manhattan_distance(a), 0);
        prop_assert!(
            a.manhattan_distance(c) <= a.manhattan_distance(b) + b.manhattan_distance(c)
        );
    }
}
