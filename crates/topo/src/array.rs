//! The rectangular tile grid and coordinate arithmetic.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A position in the tile array: `x` is the column (grows east), `y` is the
/// row (grows south). The origin `(0, 0)` is the north-west corner, matching
/// the wafer micrographs in the paper.
///
/// # Examples
///
/// ```
/// use wsp_topo::TileCoord;
///
/// let t = TileCoord::new(3, 5);
/// assert_eq!(t.x, 3);
/// assert_eq!(t.y, 5);
/// assert_eq!(t.manhattan_distance(TileCoord::new(0, 0)), 8);
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct TileCoord {
    /// Column index, increasing eastwards.
    pub x: u16,
    /// Row index, increasing southwards.
    pub y: u16,
}

impl TileCoord {
    /// Creates a coordinate from column `x` and row `y`.
    #[inline]
    pub fn new(x: u16, y: u16) -> Self {
        TileCoord { x, y }
    }

    /// Manhattan (L1) distance between two tiles, in hops.
    #[inline]
    pub fn manhattan_distance(self, other: TileCoord) -> u32 {
        let dx = (i32::from(self.x) - i32::from(other.x)).unsigned_abs();
        let dy = (i32::from(self.y) - i32::from(other.y)).unsigned_abs();
        dx + dy
    }

    /// Returns `true` when the two tiles share a row or a column.
    ///
    /// Pairs in the same row/column have only a single dimension-ordered
    /// path, which is why they dominate the residual disconnections in the
    /// paper's dual-network scheme (Sec. VI).
    #[inline]
    pub fn is_colinear_with(self, other: TileCoord) -> bool {
        self.x == other.x || self.y == other.y
    }
}

impl fmt::Display for TileCoord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl From<(u16, u16)> for TileCoord {
    fn from((x, y): (u16, u16)) -> Self {
        TileCoord::new(x, y)
    }
}

/// One of the four mesh directions.
///
/// The compute chiplet forwards its clock and escapes its network links on
/// all four sides, so almost every per-tile structure in the workspace is
/// indexed by `Direction`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Towards decreasing `y`.
    North,
    /// Towards increasing `y`.
    South,
    /// Towards increasing `x`.
    East,
    /// Towards decreasing `x`.
    West,
}

/// All four directions in a fixed order (N, S, E, W), convenient for
/// iteration and for indexing per-side arrays.
pub const DIRECTIONS: [Direction; 4] = [
    Direction::North,
    Direction::South,
    Direction::East,
    Direction::West,
];

impl Direction {
    /// The opposite direction.
    #[inline]
    pub fn opposite(self) -> Direction {
        match self {
            Direction::North => Direction::South,
            Direction::South => Direction::North,
            Direction::East => Direction::West,
            Direction::West => Direction::East,
        }
    }

    /// The `(dx, dy)` step this direction takes in grid coordinates.
    #[inline]
    pub fn offset(self) -> (i32, i32) {
        match self {
            Direction::North => (0, -1),
            Direction::South => (0, 1),
            Direction::East => (1, 0),
            Direction::West => (-1, 0),
        }
    }

    /// Index of this direction in [`DIRECTIONS`].
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Direction::North => 0,
            Direction::South => 1,
            Direction::East => 2,
            Direction::West => 3,
        }
    }

    /// Returns `true` for East/West, i.e. movement along the X dimension.
    #[inline]
    pub fn is_horizontal(self) -> bool {
        matches!(self, Direction::East | Direction::West)
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Direction::North => "north",
            Direction::South => "south",
            Direction::East => "east",
            Direction::West => "west",
        };
        f.write_str(name)
    }
}

/// A rectangular array of tiles — the waferscale grid itself.
///
/// The paper's prototype is `TileArray::new(32, 32)`; the FPGA validation
/// platform and several figures use smaller arrays (e.g. 8×8 for Fig. 4),
/// so the dimensions are parameters everywhere.
///
/// # Examples
///
/// ```
/// use wsp_topo::TileArray;
///
/// let array = TileArray::new(32, 32);
/// assert_eq!(array.tile_count(), 1024);
/// assert_eq!(array.edge_tiles().count(), 124);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TileArray {
    cols: u16,
    rows: u16,
}

impl TileArray {
    /// Creates a `cols × rows` tile array.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(cols: u16, rows: u16) -> Self {
        assert!(
            cols > 0 && rows > 0,
            "tile array dimensions must be non-zero"
        );
        TileArray { cols, rows }
    }

    /// Number of columns (the X extent).
    #[inline]
    pub fn cols(self) -> u16 {
        self.cols
    }

    /// Number of rows (the Y extent).
    #[inline]
    pub fn rows(self) -> u16 {
        self.rows
    }

    /// Total number of tile sites.
    #[inline]
    pub fn tile_count(self) -> usize {
        usize::from(self.cols) * usize::from(self.rows)
    }

    /// Returns `true` when `tile` lies inside the array.
    #[inline]
    pub fn contains(self, tile: TileCoord) -> bool {
        tile.x < self.cols && tile.y < self.rows
    }

    /// Row-major linear index of `tile`.
    ///
    /// # Panics
    ///
    /// Panics if `tile` is outside the array.
    #[inline]
    pub fn index_of(self, tile: TileCoord) -> usize {
        assert!(self.contains(tile), "tile {tile} outside {self}");
        usize::from(tile.y) * usize::from(self.cols) + usize::from(tile.x)
    }

    /// Inverse of [`TileArray::index_of`].
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.tile_count()`.
    #[inline]
    pub fn coord_of(self, index: usize) -> TileCoord {
        assert!(index < self.tile_count(), "index {index} outside {self}");
        TileCoord::new(
            (index % usize::from(self.cols)) as u16,
            (index / usize::from(self.cols)) as u16,
        )
    }

    /// Returns `true` when `tile` sits on the array boundary.
    ///
    /// Edge tiles are special throughout the design: they receive the 2.5 V
    /// supply, can host the clock generator, and connect to the external
    /// JTAG controllers.
    #[inline]
    pub fn is_edge(self, tile: TileCoord) -> bool {
        tile.x == 0 || tile.y == 0 || tile.x == self.cols - 1 || tile.y == self.rows - 1
    }

    /// The neighbouring tile in `dir`, or `None` at the array boundary.
    #[inline]
    pub fn neighbor(self, tile: TileCoord, dir: Direction) -> Option<TileCoord> {
        let (dx, dy) = dir.offset();
        let nx = i32::from(tile.x) + dx;
        let ny = i32::from(tile.y) + dy;
        if nx < 0 || ny < 0 || nx >= i32::from(self.cols) || ny >= i32::from(self.rows) {
            None
        } else {
            Some(TileCoord::new(nx as u16, ny as u16))
        }
    }

    /// Iterates over the (up to four) in-bounds neighbours of `tile`.
    pub fn neighbors(self, tile: TileCoord) -> impl Iterator<Item = TileCoord> {
        DIRECTIONS
            .into_iter()
            .filter_map(move |d| self.neighbor(tile, d))
    }

    /// Iterates over every tile in row-major order.
    pub fn tiles(self) -> Tiles {
        Tiles {
            array: self,
            next: 0,
        }
    }

    /// Iterates over the boundary tiles in row-major order.
    pub fn edge_tiles(self) -> impl Iterator<Item = TileCoord> {
        self.tiles().filter(move |&t| self.is_edge(t))
    }

    /// Minimum number of hops from `tile` to the nearest array edge.
    ///
    /// Used by the PDN model: supply voltage droops with distance from the
    /// edge ring (Fig. 2), and by the clock model: only edge tiles generate
    /// the fast clock (Sec. IV).
    #[inline]
    pub fn distance_to_edge(self, tile: TileCoord) -> u16 {
        let dx = tile.x.min(self.cols - 1 - tile.x);
        let dy = tile.y.min(self.rows - 1 - tile.y);
        dx.min(dy)
    }
}

impl fmt::Display for TileArray {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{} tile array", self.cols, self.rows)
    }
}

/// Row-major iterator over all tiles of a [`TileArray`], produced by
/// [`TileArray::tiles`].
#[derive(Debug, Clone)]
pub struct Tiles {
    array: TileArray,
    next: usize,
}

impl Iterator for Tiles {
    type Item = TileCoord;

    fn next(&mut self) -> Option<TileCoord> {
        if self.next >= self.array.tile_count() {
            None
        } else {
            let coord = self.array.coord_of(self.next);
            self.next += 1;
            Some(coord)
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.array.tile_count() - self.next;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for Tiles {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trip() {
        let array = TileArray::new(7, 5);
        for (i, tile) in array.tiles().enumerate() {
            assert_eq!(array.index_of(tile), i);
            assert_eq!(array.coord_of(i), tile);
        }
    }

    #[test]
    fn tile_count_and_iteration_agree() {
        let array = TileArray::new(32, 32);
        assert_eq!(array.tiles().count(), array.tile_count());
        assert_eq!(array.tiles().len(), 1024);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dimension_rejected() {
        let _ = TileArray::new(0, 4);
    }

    #[test]
    fn neighbors_respect_boundaries() {
        let array = TileArray::new(3, 3);
        let corner = TileCoord::new(0, 0);
        assert_eq!(array.neighbor(corner, Direction::North), None);
        assert_eq!(array.neighbor(corner, Direction::West), None);
        assert_eq!(
            array.neighbor(corner, Direction::South),
            Some(TileCoord::new(0, 1))
        );
        assert_eq!(
            array.neighbor(corner, Direction::East),
            Some(TileCoord::new(1, 0))
        );
        assert_eq!(array.neighbors(corner).count(), 2);
        assert_eq!(array.neighbors(TileCoord::new(1, 1)).count(), 4);
    }

    #[test]
    fn direction_opposites_and_offsets() {
        for d in DIRECTIONS {
            assert_eq!(d.opposite().opposite(), d);
            let (dx, dy) = d.offset();
            let (ox, oy) = d.opposite().offset();
            assert_eq!((dx + ox, dy + oy), (0, 0));
            assert_eq!(DIRECTIONS[d.index()], d);
        }
        assert!(Direction::East.is_horizontal());
        assert!(!Direction::North.is_horizontal());
    }

    #[test]
    fn edge_classification() {
        let array = TileArray::new(4, 4);
        assert_eq!(array.edge_tiles().count(), 12);
        assert!(array.is_edge(TileCoord::new(0, 2)));
        assert!(!array.is_edge(TileCoord::new(1, 1)));
        assert!(array.tiles().all(|t| array.contains(t)));
    }

    #[test]
    fn distance_to_edge_is_zero_on_boundary() {
        let array = TileArray::new(32, 32);
        for t in array.edge_tiles() {
            assert_eq!(array.distance_to_edge(t), 0);
        }
        // Centre of a 32×32 array is 15 hops from the nearest edge.
        assert_eq!(array.distance_to_edge(TileCoord::new(16, 16)), 15);
        assert_eq!(array.distance_to_edge(TileCoord::new(15, 15)), 15);
    }

    #[test]
    fn manhattan_distance_and_colinearity() {
        let a = TileCoord::new(2, 3);
        let b = TileCoord::new(5, 1);
        assert_eq!(a.manhattan_distance(b), 5);
        assert_eq!(b.manhattan_distance(a), 5);
        assert!(!a.is_colinear_with(b));
        assert!(a.is_colinear_with(TileCoord::new(2, 9)));
        assert!(a.is_colinear_with(TileCoord::new(7, 3)));
    }

    #[test]
    fn display_formats() {
        assert_eq!(TileCoord::new(1, 2).to_string(), "(1, 2)");
        assert_eq!(TileArray::new(8, 8).to_string(), "8x8 tile array");
        assert_eq!(Direction::North.to_string(), "north");
    }

    #[test]
    fn coord_from_tuple() {
        assert_eq!(TileCoord::from((4, 7)), TileCoord::new(4, 7));
    }
}
