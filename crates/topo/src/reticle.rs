//! Step-and-repeat reticle geometry of the Si-IF substrate.
//!
//! The wafer is far larger than one lithography reticle, so the substrate is
//! fabricated by stitching identical reticles, each covering a 12×6 block of
//! tiles (Sec. VIII). Wires that cross a reticle boundary are widened (2 µm
//! → 3 µm at constant pitch) to tolerate stitching misalignment; the
//! substrate router consumes this module to know where that rule applies.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{TileArray, TileCoord};

/// Position of a reticle within the step-and-repeat grid.
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct ReticleCoord {
    /// Reticle column.
    pub x: u16,
    /// Reticle row.
    pub y: u16,
}

impl fmt::Display for ReticleCoord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "reticle ({}, {})", self.x, self.y)
    }
}

/// The tiling of a [`TileArray`] by identical step-and-repeat reticles.
///
/// The paper's substrate uses 12×6-tile reticles
/// ([`ReticleGrid::PAPER_TILES_PER_RETICLE`]); partial reticles at the wafer
/// boundary carry the edge-connector fan-out instead of chiplets.
///
/// # Examples
///
/// ```
/// use wsp_topo::{ReticleGrid, TileArray, TileCoord};
///
/// let grid = ReticleGrid::paper_grid(TileArray::new(32, 32));
/// let r = grid.reticle_of(TileCoord::new(13, 3));
/// assert_eq!((r.x, r.y), (1, 0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReticleGrid {
    array: TileArray,
    tiles_x: u16,
    tiles_y: u16,
}

impl ReticleGrid {
    /// Tiles covered by one reticle in the prototype: 12 columns × 6 rows
    /// (72 tiles, Sec. VIII).
    pub const PAPER_TILES_PER_RETICLE: (u16, u16) = (12, 6);

    /// Creates a reticle grid with `tiles_x × tiles_y` tiles per reticle.
    ///
    /// # Panics
    ///
    /// Panics if either reticle dimension is zero.
    pub fn new(array: TileArray, tiles_x: u16, tiles_y: u16) -> Self {
        assert!(
            tiles_x > 0 && tiles_y > 0,
            "reticle dimensions must be non-zero"
        );
        ReticleGrid {
            array,
            tiles_x,
            tiles_y,
        }
    }

    /// Creates the paper's 12×6-tile reticle grid over `array`.
    pub fn paper_grid(array: TileArray) -> Self {
        let (tx, ty) = Self::PAPER_TILES_PER_RETICLE;
        ReticleGrid::new(array, tx, ty)
    }

    /// The underlying tile array.
    #[inline]
    pub fn array(self) -> TileArray {
        self.array
    }

    /// Tiles per reticle as `(cols, rows)`.
    #[inline]
    pub fn tiles_per_reticle(self) -> (u16, u16) {
        (self.tiles_x, self.tiles_y)
    }

    /// Number of reticle columns needed to cover the array (including
    /// partial reticles at the boundary).
    #[inline]
    pub fn reticle_cols(self) -> u16 {
        self.array.cols().div_ceil(self.tiles_x)
    }

    /// Number of reticle rows needed to cover the array.
    #[inline]
    pub fn reticle_rows(self) -> u16 {
        self.array.rows().div_ceil(self.tiles_y)
    }

    /// Total reticle count (the number of stepper exposures per layer).
    #[inline]
    pub fn reticle_count(self) -> usize {
        usize::from(self.reticle_cols()) * usize::from(self.reticle_rows())
    }

    /// The reticle containing `tile`.
    ///
    /// # Panics
    ///
    /// Panics if `tile` lies outside the array.
    #[inline]
    pub fn reticle_of(self, tile: TileCoord) -> ReticleCoord {
        assert!(self.array.contains(tile), "tile {tile} outside array");
        ReticleCoord {
            x: tile.x / self.tiles_x,
            y: tile.y / self.tiles_y,
        }
    }

    /// Returns `true` when `a` and `b` fall in different reticles, i.e. a
    /// wire between them must cross at least one stitching boundary and is
    /// subject to the fat-wire rule.
    pub fn crosses_boundary(self, a: TileCoord, b: TileCoord) -> bool {
        self.reticle_of(a) != self.reticle_of(b)
    }

    /// Number of vertical stitching boundaries a horizontal wire crosses
    /// between columns `x0` and `x1` (inclusive tile range).
    pub fn vertical_boundaries_crossed(self, x0: u16, x1: u16) -> u16 {
        let (lo, hi) = if x0 <= x1 { (x0, x1) } else { (x1, x0) };
        hi / self.tiles_x - lo / self.tiles_x
    }

    /// Number of horizontal stitching boundaries a vertical wire crosses
    /// between rows `y0` and `y1` (inclusive tile range).
    pub fn horizontal_boundaries_crossed(self, y0: u16, y1: u16) -> u16 {
        let (lo, hi) = if y0 <= y1 { (y0, y1) } else { (y1, y0) };
        hi / self.tiles_y - lo / self.tiles_y
    }
}

impl fmt::Display for ReticleGrid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{} reticles of {}x{} tiles",
            self.reticle_cols(),
            self.reticle_rows(),
            self.tiles_x,
            self.tiles_y
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_grid_covers_wafer() {
        let grid = ReticleGrid::paper_grid(TileArray::new(32, 32));
        // 32/12 → 3 columns, 32/6 → 6 rows.
        assert_eq!(grid.reticle_cols(), 3);
        assert_eq!(grid.reticle_rows(), 6);
        assert_eq!(grid.reticle_count(), 18);
        assert_eq!(grid.tiles_per_reticle(), (12, 6));
    }

    #[test]
    fn reticle_of_maps_block_wise() {
        let grid = ReticleGrid::paper_grid(TileArray::new(32, 32));
        assert_eq!(
            grid.reticle_of(TileCoord::new(0, 0)),
            ReticleCoord { x: 0, y: 0 }
        );
        assert_eq!(
            grid.reticle_of(TileCoord::new(11, 5)),
            ReticleCoord { x: 0, y: 0 }
        );
        assert_eq!(
            grid.reticle_of(TileCoord::new(12, 6)),
            ReticleCoord { x: 1, y: 1 }
        );
        assert_eq!(
            grid.reticle_of(TileCoord::new(31, 31)),
            ReticleCoord { x: 2, y: 5 }
        );
    }

    #[test]
    fn boundary_crossing() {
        let grid = ReticleGrid::paper_grid(TileArray::new(32, 32));
        assert!(!grid.crosses_boundary(TileCoord::new(0, 0), TileCoord::new(11, 5)));
        assert!(grid.crosses_boundary(TileCoord::new(11, 0), TileCoord::new(12, 0)));
        assert_eq!(grid.vertical_boundaries_crossed(0, 31), 2);
        assert_eq!(grid.vertical_boundaries_crossed(31, 0), 2);
        assert_eq!(grid.vertical_boundaries_crossed(0, 11), 0);
        assert_eq!(grid.horizontal_boundaries_crossed(0, 31), 5);
        assert_eq!(grid.horizontal_boundaries_crossed(5, 6), 1);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_reticle_dimension_rejected() {
        let _ = ReticleGrid::new(TileArray::new(4, 4), 0, 6);
    }

    #[test]
    fn display_summarises_grid() {
        let grid = ReticleGrid::paper_grid(TileArray::new(32, 32));
        assert_eq!(grid.to_string(), "3x6 reticles of 12x6 tiles");
    }
}
