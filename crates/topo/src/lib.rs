//! Tile-array topology for the waferscale chiplet processor.
//!
//! The DAC 2021 prototype arranges 1024 tiles in a 32×32 grid, each tile one
//! compute chiplet plus one memory chiplet, stitched out of 12×6-tile
//! reticles on the Si-IF substrate. Every analysis in the workspace — PDN
//! IR-drop, clock forwarding, NoC connectivity, JTAG chaining, substrate
//! routing — is an algorithm over this grid, so the grid lives in one crate.
//!
//! The main types are:
//!
//! * [`TileArray`] — the rectangular grid, coordinate/index mapping, edge
//!   and neighbour queries;
//! * [`TileCoord`] and [`Direction`] — positions and the four mesh
//!   directions;
//! * [`FaultMap`] — which tiles are faulty, plus Monte-Carlo sampling of
//!   random fault maps (used by Figs. 4 and 6 of the paper);
//! * [`ReticleGrid`] — the step-and-repeat reticle tiling of the wafer
//!   (Sec. VIII), used by the substrate router for its fat-wire stitching
//!   rule.
//!
//! # Examples
//!
//! ```
//! use wsp_topo::{Direction, TileArray, TileCoord};
//!
//! let array = TileArray::new(32, 32);
//! let centre = TileCoord::new(16, 16);
//! assert!(!array.is_edge(centre));
//! assert_eq!(
//!     array.neighbor(centre, Direction::North),
//!     Some(TileCoord::new(16, 15)),
//! );
//! ```

mod array;
mod fault;
mod reticle;

pub use array::{Direction, TileArray, TileCoord, Tiles, DIRECTIONS};
pub use fault::FaultMap;
pub use reticle::{ReticleCoord, ReticleGrid};
