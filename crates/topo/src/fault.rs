//! Fault maps: which tiles of the wafer are dead.
//!
//! The paper's whole design philosophy is driven by the expectation that a
//! few of the 2048 chiplets will fail assembly even at 99.998 % per-chiplet
//! bonding yield (Sec. V). After assembly the DfT flow localises the faulty
//! tiles and records them in a *fault map* that the kernel software uses to
//! pick network paths (Sec. VI). [`FaultMap`] is that artifact, plus the
//! random sampling used for the Monte-Carlo studies behind Figs. 4 and 6.

use std::fmt;

use rand::seq::index::sample;
use rand::{Rng, RngExt as _};
use serde::{Deserialize, Serialize};

use crate::{TileArray, TileCoord};

/// The set of faulty tiles of a [`TileArray`], stored as a bitset.
///
/// # Examples
///
/// ```
/// use wsp_topo::{FaultMap, TileArray, TileCoord};
///
/// let array = TileArray::new(8, 8);
/// let mut faults = FaultMap::none(array);
/// faults.mark_faulty(TileCoord::new(3, 3));
/// assert_eq!(faults.fault_count(), 1);
/// assert!(faults.is_healthy(TileCoord::new(0, 0)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultMap {
    array: TileArray,
    bits: Vec<u64>,
}

impl FaultMap {
    /// Creates a fault map with every tile healthy.
    pub fn none(array: TileArray) -> Self {
        let words = array.tile_count().div_ceil(64);
        FaultMap {
            array,
            bits: vec![0; words],
        }
    }

    /// Creates a fault map with the given tiles faulty.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate lies outside `array`.
    pub fn from_faulty<I>(array: TileArray, faulty: I) -> Self
    where
        I: IntoIterator<Item = TileCoord>,
    {
        let mut map = FaultMap::none(array);
        for tile in faulty {
            map.mark_faulty(tile);
        }
        map
    }

    /// Samples a fault map with exactly `count` faulty tiles chosen
    /// uniformly at random without replacement.
    ///
    /// This is the fault model behind Fig. 6 ("a set of randomly generated
    /// fault maps"): assembly failures are independent of position.
    ///
    /// # Panics
    ///
    /// Panics if `count` exceeds the number of tiles.
    pub fn sample_uniform<R: Rng + ?Sized>(array: TileArray, count: usize, rng: &mut R) -> Self {
        assert!(
            count <= array.tile_count(),
            "cannot make {count} of {} tiles faulty",
            array.tile_count()
        );
        let mut map = FaultMap::none(array);
        for idx in sample(rng, array.tile_count(), count) {
            map.set_index(idx);
        }
        map
    }

    /// Samples a fault map where each tile fails independently with
    /// probability `p` — the Bernoulli model implied by per-chiplet
    /// assembly yield.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn sample_bernoulli<R: Rng + ?Sized>(array: TileArray, p: f64, rng: &mut R) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        let mut map = FaultMap::none(array);
        for idx in 0..array.tile_count() {
            if rng.random_bool(p) {
                map.set_index(idx);
            }
        }
        map
    }

    /// The tile array this map covers.
    #[inline]
    pub fn array(&self) -> TileArray {
        self.array
    }

    /// Marks `tile` faulty. Idempotent.
    ///
    /// # Panics
    ///
    /// Panics if `tile` lies outside the array.
    pub fn mark_faulty(&mut self, tile: TileCoord) {
        let idx = self.array.index_of(tile);
        self.set_index(idx);
    }

    /// Marks `tile` healthy again (used when a repair/retest clears it).
    ///
    /// # Panics
    ///
    /// Panics if `tile` lies outside the array.
    pub fn mark_healthy(&mut self, tile: TileCoord) {
        let idx = self.array.index_of(tile);
        self.bits[idx / 64] &= !(1u64 << (idx % 64));
    }

    /// Returns `true` when `tile` is faulty.
    ///
    /// # Panics
    ///
    /// Panics if `tile` lies outside the array.
    #[inline]
    pub fn is_faulty(&self, tile: TileCoord) -> bool {
        let idx = self.array.index_of(tile);
        self.bits[idx / 64] & (1u64 << (idx % 64)) != 0
    }

    /// Returns `true` when `tile` is healthy.
    ///
    /// # Panics
    ///
    /// Panics if `tile` lies outside the array.
    #[inline]
    pub fn is_healthy(&self, tile: TileCoord) -> bool {
        !self.is_faulty(tile)
    }

    /// Number of faulty tiles.
    pub fn fault_count(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of healthy tiles.
    pub fn healthy_count(&self) -> usize {
        self.array.tile_count() - self.fault_count()
    }

    /// Iterates over the faulty tiles in row-major order.
    pub fn faulty_tiles(&self) -> impl Iterator<Item = TileCoord> + '_ {
        self.array.tiles().filter(move |&t| self.is_faulty(t))
    }

    /// Iterates over the healthy tiles in row-major order.
    pub fn healthy_tiles(&self) -> impl Iterator<Item = TileCoord> + '_ {
        self.array.tiles().filter(move |&t| self.is_healthy(t))
    }

    /// Returns `true` when every in-bounds neighbour of `tile` is faulty.
    ///
    /// Such a tile is unusable even if internally healthy: no clock can be
    /// forwarded to it and no network path can reach it (the yellow tile of
    /// Fig. 4).
    pub fn is_isolated(&self, tile: TileCoord) -> bool {
        self.array.neighbors(tile).all(|n| self.is_faulty(n))
    }

    /// Merges another fault map into this one (union of faults).
    ///
    /// # Panics
    ///
    /// Panics if the two maps cover different arrays.
    pub fn union_with(&mut self, other: &FaultMap) {
        assert_eq!(
            self.array, other.array,
            "cannot union fault maps over different arrays"
        );
        for (w, o) in self.bits.iter_mut().zip(&other.bits) {
            *w |= o;
        }
    }

    #[inline]
    fn set_index(&mut self, idx: usize) {
        self.bits[idx / 64] |= 1u64 << (idx % 64);
    }
}

impl fmt::Display for FaultMap {
    /// Renders the map as an ASCII grid: `.` healthy, `X` faulty.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for y in 0..self.array.rows() {
            for x in 0..self.array.cols() {
                let c = if self.is_faulty(TileCoord::new(x, y)) {
                    'X'
                } else {
                    '.'
                };
                write!(f, "{c}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsp_common::seeded_rng;

    fn array8() -> TileArray {
        TileArray::new(8, 8)
    }

    #[test]
    fn empty_map_is_all_healthy() {
        let map = FaultMap::none(array8());
        assert_eq!(map.fault_count(), 0);
        assert_eq!(map.healthy_count(), 64);
        assert!(map.array().tiles().all(|t| map.is_healthy(t)));
    }

    #[test]
    fn mark_and_clear() {
        let mut map = FaultMap::none(array8());
        let t = TileCoord::new(4, 4);
        map.mark_faulty(t);
        map.mark_faulty(t); // idempotent
        assert!(map.is_faulty(t));
        assert_eq!(map.fault_count(), 1);
        map.mark_healthy(t);
        assert!(map.is_healthy(t));
        assert_eq!(map.fault_count(), 0);
    }

    #[test]
    fn from_faulty_collects() {
        let faults = [TileCoord::new(0, 0), TileCoord::new(7, 7)];
        let map = FaultMap::from_faulty(array8(), faults);
        assert_eq!(map.faulty_tiles().collect::<Vec<_>>(), faults);
    }

    #[test]
    fn sample_uniform_has_exact_count() {
        let mut rng = seeded_rng(3);
        for count in [0, 1, 5, 64] {
            let map = FaultMap::sample_uniform(array8(), count, &mut rng);
            assert_eq!(map.fault_count(), count);
        }
    }

    #[test]
    fn sample_uniform_is_deterministic_per_seed() {
        let a = FaultMap::sample_uniform(array8(), 6, &mut seeded_rng(11));
        let b = FaultMap::sample_uniform(array8(), 6, &mut seeded_rng(11));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "cannot make")]
    fn sample_uniform_rejects_overflow() {
        let _ = FaultMap::sample_uniform(array8(), 65, &mut seeded_rng(0));
    }

    #[test]
    fn sample_bernoulli_extremes() {
        let mut rng = seeded_rng(7);
        assert_eq!(
            FaultMap::sample_bernoulli(array8(), 0.0, &mut rng).fault_count(),
            0
        );
        assert_eq!(
            FaultMap::sample_bernoulli(array8(), 1.0, &mut rng).fault_count(),
            64
        );
    }

    #[test]
    fn sample_bernoulli_rate_is_plausible() {
        let array = TileArray::new(32, 32);
        let mut rng = seeded_rng(42);
        let total: usize = (0..20)
            .map(|_| FaultMap::sample_bernoulli(array, 0.1, &mut rng).fault_count())
            .sum();
        let mean = total as f64 / 20.0;
        // E = 102.4; allow generous slack for 20 samples.
        assert!((70.0..140.0).contains(&mean), "mean fault count {mean}");
    }

    #[test]
    fn isolation_detection() {
        let array = array8();
        let centre = TileCoord::new(3, 3);
        let ring: Vec<TileCoord> = array.neighbors(centre).collect();
        let map = FaultMap::from_faulty(array, ring);
        assert!(map.is_isolated(centre));
        assert!(!map.is_isolated(TileCoord::new(0, 0)));
    }

    #[test]
    fn union_merges_faults() {
        let mut a = FaultMap::from_faulty(array8(), [TileCoord::new(1, 1)]);
        let b = FaultMap::from_faulty(array8(), [TileCoord::new(2, 2)]);
        a.union_with(&b);
        assert_eq!(a.fault_count(), 2);
        assert!(a.is_faulty(TileCoord::new(1, 1)));
        assert!(a.is_faulty(TileCoord::new(2, 2)));
    }

    #[test]
    fn display_draws_grid() {
        let map = FaultMap::from_faulty(TileArray::new(3, 2), [TileCoord::new(1, 0)]);
        assert_eq!(map.to_string(), ".X.\n...\n");
    }

    #[test]
    fn fault_map_is_serializable() {
        fn assert_serde<T: serde::Serialize + serde::de::DeserializeOwned>() {}
        assert_serde::<FaultMap>();
    }
}
