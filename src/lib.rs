//! Umbrella crate for the waferscale chiplet processor reproduction.
//!
//! This crate re-exports the public APIs of every workspace member so the
//! examples under `examples/` and the cross-crate integration tests under
//! `tests/` can address the whole system through one import. Library users
//! should depend on the individual crates ([`waferscale`], [`wsp_noc`], …)
//! directly.
//!
//! # Examples
//!
//! ```
//! use wsp::waferscale::SystemConfig;
//!
//! let cfg = SystemConfig::paper_prototype();
//! assert_eq!(cfg.total_cores(), 14_336);
//! ```

pub use waferscale;
pub use wsp_assembly;
pub use wsp_clock;
pub use wsp_common;
pub use wsp_dft;
pub use wsp_noc;
pub use wsp_pdn;
pub use wsp_route;
pub use wsp_tile;
pub use wsp_topo;
