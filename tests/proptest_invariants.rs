//! Property-based tests over the core invariants of the design flow.

use proptest::prelude::*;
use wsp_assembly::{BondingModel, RedundancyScheme};
use wsp_clock::{DccUnit, DutyCycleModel, ForwardingSim, TileClock};
use wsp_common::seeded_rng;
use wsp_noc::{dor_path, path_is_healthy, NetworkChoice, NetworkKind, RoutePlanner};
use wsp_route::{check_route, LayerMode, RouterConfig, WaferNetlist};
use wsp_topo::{FaultMap, TileArray, TileCoord};

/// Strategy: an array between 2x2 and 12x12 plus two tiles inside it.
fn array_and_pair() -> impl Strategy<Value = (TileArray, TileCoord, TileCoord)> {
    (2u16..=12, 2u16..=12).prop_flat_map(|(cols, rows)| {
        (
            Just(TileArray::new(cols, rows)),
            (0..cols, 0..rows).prop_map(|(x, y)| TileCoord::new(x, y)),
            (0..cols, 0..rows).prop_map(|(x, y)| TileCoord::new(x, y)),
        )
    })
}

proptest! {
    /// DoR paths are minimal, axis-monotone, and stay in bounds.
    #[test]
    fn dor_paths_are_minimal_and_monotone(
        (array, a, b) in array_and_pair(),
        network in prop_oneof![Just(NetworkKind::Xy), Just(NetworkKind::Yx)],
    ) {
        let path = dor_path(a, b, network);
        prop_assert_eq!(path.len() as u32, a.manhattan_distance(b) + 1);
        prop_assert_eq!(path[0], a);
        prop_assert_eq!(*path.last().expect("non-empty"), b);
        for w in path.windows(2) {
            prop_assert_eq!(w[0].manhattan_distance(w[1]), 1);
            prop_assert!(array.contains(w[1]));
        }
        // Exactly one turn (or zero for colinear pairs): the path's
        // direction changes at most once — the deadlock-freedom core.
        let mut turns = 0;
        for w in path.windows(3) {
            let d1 = (i32::from(w[1].x) - i32::from(w[0].x), i32::from(w[1].y) - i32::from(w[0].y));
            let d2 = (i32::from(w[2].x) - i32::from(w[1].x), i32::from(w[2].y) - i32::from(w[1].y));
            if d1 != d2 {
                turns += 1;
            }
        }
        prop_assert!(turns <= 1, "DoR path took {} turns", turns);
    }

    /// The request path on one network reversed equals the response path
    /// on the complementary network (Fig. 7's protocol invariant).
    #[test]
    fn response_retraces_request((_, a, b) in array_and_pair()) {
        for network in [NetworkKind::Xy, NetworkKind::Yx] {
            let mut forward = dor_path(a, b, network);
            forward.reverse();
            let response = dor_path(b, a, network.complement());
            prop_assert_eq!(&forward, &response);
        }
    }

    /// Dual-network connectivity is monotone: adding faults never
    /// reconnects a pair, and the dual scheme never does worse than a
    /// single network.
    #[test]
    fn connectivity_is_monotone_in_faults(
        seed in 0u64..1000,
        base_faults in 0usize..6,
    ) {
        let array = TileArray::new(12, 12);
        let mut rng = seeded_rng(seed);
        let faults = FaultMap::sample_uniform(array, base_faults, &mut rng);
        let mut more = faults.clone();
        more.union_with(&FaultMap::sample_uniform(array, 3, &mut rng));

        for s in faults.healthy_tiles().take(20) {
            for d in faults.healthy_tiles().take(20) {
                if s == d { continue; }
                for network in [NetworkKind::Xy, NetworkKind::Yx] {
                    if !more.is_faulty(s) && !more.is_faulty(d)
                        && path_is_healthy(&more, s, d, network) {
                        prop_assert!(
                            path_is_healthy(&faults, s, d, network),
                            "fewer faults broke {}->{}", s, d
                        );
                    }
                }
            }
        }
    }

    /// The kernel planner only ever returns usable decisions: a Direct
    /// choice has a healthy path; a Relay has two healthy legs.
    #[test]
    fn planner_choices_are_always_traversable(
        seed in 0u64..500,
        fault_count in 0usize..10,
    ) {
        let array = TileArray::new(8, 8);
        let mut rng = seeded_rng(seed);
        let faults = FaultMap::sample_uniform(array, fault_count, &mut rng);
        let planner = RoutePlanner::new(faults.clone());
        let healthy: Vec<TileCoord> = faults.healthy_tiles().collect();
        for &s in healthy.iter().take(12) {
            for &d in healthy.iter().rev().take(12) {
                if s == d { continue; }
                match planner.choose(s, d) {
                    NetworkChoice::Direct(n) => {
                        prop_assert!(path_is_healthy(&faults, s, d, n));
                    }
                    NetworkChoice::Relay { via, first, second } => {
                        prop_assert!(faults.is_healthy(via));
                        prop_assert!(path_is_healthy(&faults, s, via, first));
                        prop_assert!(path_is_healthy(&faults, via, d, second));
                    }
                    NetworkChoice::Disconnected => {}
                }
            }
        }
    }

    /// Clock forwarding reaches exactly the healthy tiles that are
    /// graph-connected to the generator (the paper's induction argument).
    #[test]
    fn clock_reaches_exactly_the_connected_component(
        seed in 0u64..500,
        fault_count in 0usize..30,
    ) {
        let array = TileArray::new(10, 10);
        let mut rng = seeded_rng(seed);
        let faults = FaultMap::sample_uniform(array, fault_count, &mut rng);
        let Some(generator) = array.edge_tiles().find(|&t| faults.is_healthy(t)) else {
            return Ok(());
        };
        let plan = ForwardingSim::new(faults.clone()).run([generator]).expect("ok");
        // BFS ground truth.
        let mut reach = vec![false; array.tile_count()];
        let mut queue = std::collections::VecDeque::from([generator]);
        reach[array.index_of(generator)] = true;
        while let Some(t) = queue.pop_front() {
            for nb in array.neighbors(t) {
                let i = array.index_of(nb);
                if faults.is_healthy(nb) && !reach[i] {
                    reach[i] = true;
                    queue.push_back(nb);
                }
            }
        }
        for tile in array.tiles() {
            let clocked = matches!(
                plan.state_of(tile),
                TileClock::Generator | TileClock::Locked { .. }
            );
            prop_assert_eq!(clocked, reach[array.index_of(tile)], "tile {}", tile);
        }
    }

    /// Duty-cycle distortion with inversion is bounded by one tile's
    /// distortion for any magnitude and chain length.
    #[test]
    fn inverted_forwarding_is_always_bounded(
        d in -0.4f64..0.4,
        hops in 1u32..200,
    ) {
        let model = DutyCycleModel::new(d, true, None);
        prop_assert!(model.worst_distortion(hops) <= d.abs() + 1e-9);
        prop_assert_eq!(model.max_hops(hops), None);
    }

    /// DCC contraction: without inversion the distortion grows
    /// monotonically towards the fixed point `e* = r·d/(1−r)`. When that
    /// fixed point fits in the half-period the clock survives any chain
    /// length with `worst ≤ e*`; when it does not, the clock eventually
    /// dies — a *weak* corrector cannot save an arbitrarily bad chain.
    #[test]
    fn dcc_converges_to_its_fixed_point(
        d in 0.01f64..0.3,
        r in 0.0f64..0.95,
    ) {
        let model = DutyCycleModel::new(d, false, Some(DccUnit::new(r)));
        let fixed_point = r * d / (1.0 - r);
        if fixed_point < 0.4 {
            prop_assert_eq!(model.max_hops(500), None);
            prop_assert!(model.worst_distortion(500) <= fixed_point + 1e-9);
        } else if fixed_point > 0.55 {
            prop_assert!(model.max_hops(5000).is_some(),
                "fixed point {} beyond the half-period must kill the clock", fixed_point);
        }
    }

    /// Bonding yield: the dual-pillar scheme is never worse than single
    /// pillar, for any pillar yield and pad count.
    #[test]
    fn redundancy_never_hurts(
        yield_ppm in 900_000u32..1_000_000,
        pads in 1u32..4000,
    ) {
        let y = f64::from(yield_ppm) / 1e6;
        let single = BondingModel::new(y, RedundancyScheme::SinglePillar, pads);
        let dual = BondingModel::new(y, RedundancyScheme::DualPillar, pads);
        prop_assert!(dual.chiplet_yield() >= single.chiplet_yield());
        prop_assert!(dual.pad_yield() >= single.pad_yield());
    }

    /// The substrate router is DRC-clean on every array size, and the
    /// single-layer mode never drops an essential net.
    #[test]
    fn router_is_drc_clean_on_any_array(
        cols in 2u16..16,
        rows in 2u16..16,
        single_layer in proptest::bool::ANY,
    ) {
        let array = TileArray::new(cols, rows);
        let mode = if single_layer { LayerMode::SingleLayer } else { LayerMode::DualLayer };
        let config = RouterConfig::paper_config(array, mode);
        let report = config.route(&WaferNetlist::generate(array)).expect("routes");
        prop_assert_eq!(report.failed_nets(), 0);
        prop_assert!(check_route(&report, &config).is_empty());
        for net in report.dropped() {
            prop_assert!(!net.class.is_essential());
        }
    }
}
