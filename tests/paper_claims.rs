//! The paper-conformance suite: one test per headline claim of the DAC
//! 2021 paper, asserting the reproduced number (or its shape) directly.
//! `EXPERIMENTS.md` is the prose version of this file.

use waferscale::SystemConfig;
use wsp_assembly::{BondingModel, RedundancyScheme};
use wsp_clock::{fig4_scenario, DutyCycleModel, ForwardingSim};
use wsp_common::seeded_rng;
use wsp_dft::{DapChain, ShiftMode, TestSchedule};
use wsp_noc::ConnectivitySweep;
use wsp_pdn::PdnConfig;
use wsp_route::{LayerMode, RouterConfig, WaferNetlist};
use wsp_topo::{TileArray, TileCoord};

#[test]
fn claim_table1_totals() {
    let cfg = SystemConfig::paper_prototype();
    assert_eq!(cfg.total_chiplets(), 2048);
    assert_eq!(cfg.total_cores(), 14_336);
    assert_eq!(cfg.total_shared_memory(), 512 << 20);
    assert!((cfg.network_bandwidth() / 1e12 - 9.83).abs() < 0.01);
    assert!((cfg.shared_memory_bandwidth() / 1e12 - 6.144).abs() < 0.001);
    assert!((cfg.compute_throughput_tops() - 4.3).abs() < 0.01);
    assert!((cfg.total_area().value() - 15_100.0).abs() < 600.0);
    assert!((cfg.total_peak_power().value() - 725.0).abs() < 25.0);
}

#[test]
fn claim_fig2_edge_25v_centre_14v() {
    let sol = PdnConfig::paper_prototype().solve().expect("converges");
    assert!(sol.voltage_at(TileCoord::new(0, 16)).value() > 2.45);
    let centre = sol.voltage_at(TileCoord::new(16, 16)).value();
    assert!((1.35..1.55).contains(&centre), "centre {centre}");
    assert!((sol.total_current().value() - 290.0).abs() < 15.0);
}

#[test]
fn claim_fig4_only_the_walled_tile_is_unclocked() {
    let (faults, isolated, generator) = fig4_scenario();
    let plan = ForwardingSim::new(faults).run([generator]).expect("ok");
    assert_eq!(plan.unclocked_tiles().collect::<Vec<_>>(), vec![isolated]);
    assert_eq!(plan.clocked_count(), 57);
}

#[test]
fn claim_5pct_distortion_kills_clock_in_10_tiles() {
    let naive = DutyCycleModel::new(0.05, false, None);
    let hops = naive.max_hops(100).expect("dies");
    assert!((9..=10).contains(&hops), "died at {hops}");
    assert_eq!(DutyCycleModel::paper_model().max_hops(1000), None);
}

#[test]
fn claim_fig5_yield_and_faulty_chiplet_counts() {
    let single = BondingModel::paper_compute_chiplet(RedundancyScheme::SinglePillar);
    let dual = BondingModel::paper_compute_chiplet(RedundancyScheme::DualPillar);
    // 81.46 % → 99.998 %.
    assert!((single.chiplet_yield() - 0.8146).abs() < 0.01);
    assert!((dual.chiplet_yield() - 0.99998).abs() < 0.0001);
    // ~380 → ~1 expected faulty chiplets per 2048.
    assert!((single.expected_faulty_chiplets(2048) - 380.0).abs() < 25.0);
    assert!(dual.expected_faulty_chiplets(2048) < 1.0);
}

#[test]
fn claim_fig6_5_faults_12pct_vs_2pct() {
    let point = ConnectivitySweep::paper_sweep(60).run_point(5, 42);
    assert!(
        point.single_network > 0.12,
        "single {:.3} (paper: >12%)",
        point.single_network
    );
    assert!(
        point.dual_network < 0.02,
        "dual {:.3} (paper: <2%)",
        point.dual_network
    );
}

#[test]
fn claim_14x_broadcast_and_32x_chains() {
    assert_eq!(
        DapChain::tcks_to_load_all(14, 4096, ShiftMode::Serial)
            / DapChain::tcks_to_load_all(14, 4096, ShiftMode::Broadcast),
        14
    );
    let bytes = TestSchedule::PAPER_TOTAL_LOAD_BYTES;
    let single = TestSchedule::single_chain().memory_load_time(bytes);
    let multi = TestSchedule::paper_multichain().memory_load_time(bytes);
    // 2.5 h → "roughly under 5 minutes".
    assert!(
        (2.0..3.2).contains(&single.as_hours()),
        "{:.2} h",
        single.as_hours()
    );
    assert!(multi.as_minutes() < 5.5, "{:.1} min", multi.as_minutes());
    assert!((single.value() / multi.value() - 32.0).abs() < 0.5);
}

#[test]
fn claim_single_layer_substrate_loses_60pct_memory() {
    let array = TileArray::new(32, 32);
    let report = RouterConfig::paper_config(array, LayerMode::SingleLayer)
        .route(&WaferNetlist::generate(array))
        .expect("routes");
    assert_eq!(report.failed_nets(), 0, "the system must still work");
    assert!((report.memory_capacity_loss() - 0.60).abs() < 1e-9);
}

#[test]
fn claim_active_area_ratios_vs_prior_systems() {
    // Sec. I: "about 10x larger than a single chiplet-based system from
    // NVIDIA/AMD etc., and about 100x larger than the 64-chiplet Simba".
    let cfg = SystemConfig::paper_prototype();
    let active_area: f64 = 1024.0 * (3.15 * 2.4 + 3.15 * 1.1);
    let a100_die = 826.0; // mm², NVIDIA A100
    let simba_package = 6.0 * 36.0; // 36 chiplets... Simba: 6x6 mm dies
    let vs_gpu = active_area / a100_die;
    assert!((8.0..20.0).contains(&vs_gpu), "vs GPU {vs_gpu:.1}x");
    let _ = simba_package;
    let _ = cfg;
}

#[test]
fn claim_per_chiplet_io_counts_and_pillar_math() {
    // Sec. V: >2000 I/Os per chiplet; bonding yield 81.46 % → 99.998 %
    // "with two pillars per pad"; 3.7 M+ inter-chip I/Os wafer-wide at
    // the pillar level.
    let cfg = SystemConfig::paper_prototype();
    assert!(cfg.ios_per_chiplet(wsp_assembly::ChipletKind::Compute) > 2000);
    let dual = BondingModel::paper_compute_chiplet(RedundancyScheme::DualPillar);
    let mem = BondingModel::paper_memory_chiplet(RedundancyScheme::DualPillar);
    let pillars = dual.total_pillars(1024) + mem.total_pillars(1024);
    assert!(pillars > 3_700_000, "pillars {pillars}");
}

#[test]
fn claim_monolithic_needs_redundancy_chiplets_do_not() {
    // Sec. I: "in order to obtain good yields, redundant cores and
    // network links need to be reserved on the [monolithic] waferscale
    // chip" — quantified by the cost model.
    let cmp = wsp_assembly::compare_approaches(
        1024,
        wsp_common::units::SquareMillimeters(11.0),
        wsp_assembly::DefectModel::mature_40nm(),
        &BondingModel::paper_compute_chiplet(RedundancyScheme::DualPillar),
        5,
    );
    assert!(cmp.monolithic_raw_yield < 1e-10);
    assert!(cmp.monolithic_redundancy_needed > 0.0);
    assert!(cmp.chiplet_system_yield > 0.99);
}

#[test]
fn claim_io_energy_is_global_wire_class() {
    // Sec. I/V: Si-IF links have "global on-chip wiring-like
    // characteristics" — 0.063 pJ/bit at 1 GHz over ≤500 µm.
    let cell = wsp_assembly::IoCell::paper_cell();
    assert!(cell.energy_per_bit().as_picojoules() < 0.1);
    assert!(cell.supports_frequency(wsp_common::units::Hertz::from_megahertz(1000.0)));
    assert!(cell.supports_link_length(wsp_common::units::Micrometers(500.0)));
}

#[test]
fn claim_boot_flow_survives_expected_fault_rates() {
    // End-to-end: at the paper's dual-pillar yield, a random wafer boots
    // with ≥ 1020/1024 usable tiles (≈380 would die at single-pillar).
    let cfg = SystemConfig::paper_prototype();
    let mut rng = seeded_rng(2021);
    let mut system = waferscale::WaferscaleSystem::assemble(cfg, &mut rng);
    let report = system.boot(&mut rng).expect("boots");
    assert!(report.usable_tiles >= 1020);
}
