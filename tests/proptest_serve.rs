//! Property tests for the serving layer's slice confinement: a job
//! placed on slice A must never inject or deliver a packet whose path
//! leaves A's rectangle — across `{dense, sparse, wheel}` stepping,
//! random wafer fault maps, and every slice of the partition.
//!
//! Confinement holds by construction (a slice machine is built over the
//! slice's own local array, so there is no wider fabric to escape into);
//! these properties pin the construction: the restricted fault map is
//! exactly the wafer map's window, every fabric link that ever carried a
//! packet maps back into the slice rectangle in wafer coordinates, no
//! boundary-crossing link carries traffic, and machine outcomes are
//! bit-identical across stepping modes.

use proptest::prelude::*;
use wsp_common::parallel::Stepping;
use wsp_common::seeded_rng;
use wsp_noc::NetworkKind;
use wsp_sched::{build_halo_slice_machine, partition, restrict_faults, slice_usable};
use wsp_tile::MemoryModelKind;
use wsp_topo::{Direction, FaultMap, TileArray, TileCoord, DIRECTIONS};

/// Wafer shapes the properties range over: square, wide, tall.
const WAFERS: [(u16, u16); 3] = [(8, 8), (12, 4), (6, 9)];

/// Slice extents (must divide or underfill the wafers above).
const SLICES: [(u16, u16); 3] = [(4, 4), (3, 3), (2, 4)];

const STEPPINGS: [Stepping; 3] = [Stepping::Dense, Stepping::Sparse, Stepping::Wheel];

proptest! {
    /// The slice-local fault map is the wafer map's window: equal tile
    /// by tile under the coordinate mapping, with nothing else mixed in.
    #[test]
    fn restriction_is_the_wafer_window(
        seed in any::<u64>(),
        wafer_idx in 0usize..WAFERS.len(),
        slice_idx in 0usize..SLICES.len(),
        faults in 0usize..10,
    ) {
        let (cols, rows) = WAFERS[wafer_idx];
        let wafer = TileArray::new(cols, rows);
        let map = FaultMap::sample_uniform(wafer, faults, &mut seeded_rng(seed));
        let (sw, sh) = SLICES[slice_idx];
        for slice in partition(wafer, sw, sh) {
            let local = restrict_faults(&map, slice.rect);
            prop_assert_eq!(local.array(), TileArray::new(sw, sh));
            for t in local.array().tiles() {
                prop_assert_eq!(
                    local.is_faulty(t),
                    map.is_faulty(slice.rect.to_wafer(t)),
                    "tile {} of slice {}", t, slice.rect
                );
            }
            // Fault counts agree with the wafer window.
            let in_window = map
                .faulty_tiles()
                .filter(|&t| slice.rect.contains(t))
                .count();
            prop_assert_eq!(local.fault_count(), in_window);
        }
    }

    /// Running a machine-level halo job on a usable slice keeps all
    /// fabric traffic inside the slice rectangle (in wafer coordinates),
    /// never forwards a packet across the slice boundary, and produces
    /// bit-identical stats and link heat maps in every stepping mode.
    #[test]
    fn halo_job_traffic_never_leaves_the_slice(
        seed in any::<u64>(),
        wafer_idx in 0usize..WAFERS.len(),
        slice_idx in 0usize..SLICES.len(),
        faults in 0usize..8,
    ) {
        let (cols, rows) = WAFERS[wafer_idx];
        let wafer = TileArray::new(cols, rows);
        let map = FaultMap::sample_uniform(wafer, faults, &mut seeded_rng(seed));
        let (sw, sh) = SLICES[slice_idx];
        for slice in partition(wafer, sw, sh) {
            if !slice_usable(&map, slice.rect) {
                continue;
            }
            let local = restrict_faults(&map, slice.rect);
            let mut reference: Option<(waferscale::MachineStats, Vec<u64>)> = None;
            for stepping in STEPPINGS {
                let mut m = build_halo_slice_machine(&local, 1, stepping, MemoryModelKind::Fixed);
                let stats = m.run_until_halt(2_000_000).expect("halo job halts");
                let array = local.array();
                let mut heat = Vec::new();
                for network in [NetworkKind::Xy, NetworkKind::Yx] {
                    for t in array.tiles() {
                        for dir in DIRECTIONS {
                            let link = m.fabric().link_stats(network, t, dir);
                            heat.push(link.forwarded);
                            if link.forwarded == 0 && link.peak_occupancy == 0 {
                                continue;
                            }
                            // The source endpoint sits inside the slice...
                            let wafer_tile = slice.rect.to_wafer(t);
                            prop_assert!(
                                slice.rect.contains(wafer_tile),
                                "traffic at {} outside slice {}", wafer_tile, slice.rect
                            );
                            // ...and the link's far endpoint does too: a
                            // link pointing off the slice edge must never
                            // carry a packet.
                            let (dx, dy) = dir.offset();
                            let nx = i32::from(wafer_tile.x) + dx;
                            let ny = i32::from(wafer_tile.y) + dy;
                            prop_assert!(
                                nx >= 0 && ny >= 0,
                                "packet forwarded off the wafer from {wafer_tile}"
                            );
                            let neighbor = TileCoord::new(nx as u16, ny as u16);
                            prop_assert!(
                                slice.rect.contains(neighbor),
                                "packet crossed the slice boundary {} -> {} ({:?})",
                                wafer_tile, neighbor, dir
                            );
                        }
                    }
                }
                match &reference {
                    None => reference = Some((stats, heat)),
                    Some((want_stats, want_heat)) => {
                        prop_assert_eq!(want_stats, &stats, "{:?} stats diverged", stepping);
                        prop_assert_eq!(want_heat, &heat, "{:?} heat map diverged", stepping);
                    }
                }
            }
        }
    }

    /// Analytic kernel jobs are equally confined: the system a job runs
    /// on covers exactly the slice's local array, so its route planner
    /// cannot name a tile outside the rectangle. (The machine-level case
    /// above checks real packets; this pins the system-level workloads.)
    #[test]
    fn kernel_job_system_covers_only_the_slice(
        seed in any::<u64>(),
        wafer_idx in 0usize..WAFERS.len(),
        slice_idx in 0usize..SLICES.len(),
        faults in 0usize..8,
    ) {
        use waferscale::workload::{run_bfs, Graph, GraphKind};
        use waferscale::{SystemConfig, WaferscaleSystem};

        let (cols, rows) = WAFERS[wafer_idx];
        let wafer = TileArray::new(cols, rows);
        let map = FaultMap::sample_uniform(wafer, faults, &mut seeded_rng(seed));
        let (sw, sh) = SLICES[slice_idx];
        for slice in partition(wafer, sw, sh) {
            if !slice_usable(&map, slice.rect) {
                continue;
            }
            let local = restrict_faults(&map, slice.rect);
            let cfg = SystemConfig::with_array(local.array());
            let system = WaferscaleSystem::with_faults(cfg, local.clone());
            prop_assert_eq!(system.config().array(), TileArray::new(sw, sh));
            let g = Graph::generate(
                GraphKind::UniformRandom { avg_degree: 4 },
                64,
                &mut seeded_rng(seed ^ 1),
            );
            let (dist, _report) = run_bfs(&system, &g, 0).expect("usable slice routes");
            prop_assert_eq!(dist, g.reference_bfs(0));
        }
    }
}

/// Non-property pin: `Direction::offset` and `SliceRect::contains`
/// together classify every boundary link of a 4×4 slice at wafer origin
/// (4,4) as outside — the exact predicate the traffic property leans on.
#[test]
fn boundary_links_are_classified_outside() {
    let rect = wsp_sched::SliceRect::new(4, 4, 4, 4);
    for t in [TileCoord::new(4, 4), TileCoord::new(7, 7)] {
        assert!(rect.contains(t));
        for dir in DIRECTIONS {
            let (dx, dy) = dir.offset();
            let nx = i32::from(t.x) + dx;
            let ny = i32::from(t.y) + dy;
            let neighbor = TileCoord::new(nx as u16, ny as u16);
            let inside = rect.contains(neighbor);
            // Corner tiles have exactly two in-slice neighbours.
            if t == TileCoord::new(4, 4) {
                assert_eq!(inside, matches!(dir, Direction::South | Direction::East));
            } else {
                assert_eq!(inside, matches!(dir, Direction::North | Direction::West));
            }
        }
    }
}
