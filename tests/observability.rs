//! Integration tests for the run-artifact observability pipeline: the
//! determinism-digest journal must localise an injected single-tile
//! divergence to the right lane and cycle window, and every artifact
//! (time series, digests) must be identical across stepping modes and
//! thread counts — the property that lets them live inside the
//! byte-compared smoke goldens.

use waferscale::{LatencyModel, MultiTileMachine, SystemConfig};
use wsp_common::parallel::Stepping;
use wsp_telemetry::{first_divergence, DigestJournal, LaneId};
use wsp_tile::isa::{Program, Reg};
use wsp_topo::{FaultMap, TileArray, TileCoord};

/// Digest cadence used by the injection test: small enough that the
/// divergence window is tight, large enough to span several steps.
const EVERY: u64 = 16;

/// Builds a 4×4 fabric-model machine where every tile atomically
/// increments a counter on tile (0, 0) — remote traffic on every tile,
/// so both networks and the machine lanes carry real state.
fn build_machine(stepping: Stepping, threads: usize, digest_every: u64) -> MultiTileMachine {
    let array = TileArray::new(4, 4);
    let cfg = SystemConfig::with_array(array).with_latency_model(LatencyModel::Fabric);
    let mut m = MultiTileMachine::new(cfg, FaultMap::none(array));
    m.set_threads(threads);
    m.set_stepping(stepping);
    m.set_sampling(8);
    m.set_digests(digest_every);
    let counter = m.global_address(TileCoord::new(0, 0), 256).expect("mapped");
    let program = Program::builder()
        .ldi(Reg::R1, counter)
        .ldi(Reg::R2, 1)
        .ldi(Reg::R3, 40)
        .ldi(Reg::R0, 0)
        .label("loop")
        .amo_add(Reg::R4, Reg::R1, Reg::R2)
        .addi(Reg::R3, Reg::R3, -1)
        .bne(Reg::R3, Reg::R0, "loop")
        .halt()
        .build()
        .expect("builds");
    for tile in array.tiles() {
        m.load_program(tile, 0, &program).expect("loads");
    }
    m
}

/// Injecting a one-register mutation into a single core mid-run must
/// surface as a divergence in exactly that tile's machine lane, in the
/// first digest window after the mutation — this is the debugging story
/// `wsp-diff digest` sells, reproduced end to end.
#[test]
fn injected_divergence_is_localized_to_tile_and_window() {
    let mut clean = build_machine(Stepping::Dense, 1, EVERY);
    let mut mutated = build_machine(Stepping::Dense, 1, EVERY);
    let victim = TileCoord::new(2, 1);
    let victim_idx = TileArray::new(4, 4).index_of(victim) as u32;
    let mutate_at = 40u64;
    for cycle in 0..200 {
        clean.step().expect("clean steps");
        mutated.step().expect("mutated steps");
        if cycle + 1 == mutate_at {
            // R5 is unused by the program, so execution stays identical
            // on both machines — only the architectural digest differs.
            mutated.core_mut(victim, 0).set_reg(Reg::R5, 0xDEAD_BEEF);
        }
    }
    let d = first_divergence(
        clean.journal().expect("digests on"),
        mutated.journal().expect("digests on"),
    )
    .expect("comparable journals")
    .expect("the mutation must be caught");
    assert_eq!(
        d.lane,
        LaneId::Machine { tile: victim_idx },
        "divergence pinned to the wrong lane: {}",
        d.lane
    );
    let (start, end) = d.window;
    assert!(
        start <= mutate_at && mutate_at <= end,
        "window {start}..={end} does not cover the mutation at cycle {mutate_at}"
    );
    assert_eq!(end - start + 1, EVERY, "window width is the digest cadence");
}

/// Identical runs produce identical journals — the no-divergence path.
#[test]
fn identical_runs_have_identical_digests() {
    let run = || {
        let mut m = build_machine(Stepping::Dense, 1, EVERY);
        for _ in 0..200 {
            m.step().expect("steps");
        }
        m.journal().expect("digests on").to_text()
    };
    let (a, b) = (run(), run());
    assert_eq!(a, b);
    let parsed = DigestJournal::parse(&a).expect("roundtrips");
    assert_eq!(parsed.to_text(), a, "text form roundtrips exactly");
}

/// The digest journal and every sampled time series are pure functions
/// of architectural state: the sparse active-set walk at 8 threads must
/// reproduce the dense single-threaded artifacts byte for byte.
#[test]
fn artifacts_are_identical_across_stepping_and_threads() {
    let run = |stepping, threads| {
        let mut m = build_machine(stepping, threads, EVERY);
        let stats = m.run_until_halt(100_000).expect("halts");
        let journal = m.journal().expect("digests on").to_text();
        let machine_series: Vec<(String, Vec<(u64, f64)>)> = m
            .timeseries()
            .map(|(name, s)| (name.to_string(), s.points().to_vec()))
            .collect();
        let fabric_series: Vec<(String, Vec<(u64, f64)>)> = m
            .fabric()
            .timeseries()
            .map(|(name, s)| (name.to_string(), s.points().to_vec()))
            .collect();
        (stats, journal, machine_series, fabric_series)
    };
    let baseline = run(Stepping::Dense, 1);
    for (stepping, threads) in [
        (Stepping::Dense, 8),
        (Stepping::Sparse, 1),
        (Stepping::Sparse, 8),
        (Stepping::Wheel, 1),
        (Stepping::Wheel, 8),
    ] {
        assert_eq!(
            baseline,
            run(stepping, threads),
            "artifacts diverged at {stepping:?}/{threads} threads"
        );
    }
}
