//! End-to-end DfT: serialise a real ISA program into bits, shift it
//! through the DAP chain model exactly as the external controller would,
//! reassemble it on the far side, and execute it — the full
//! "program/data loading phase" of Sec. VII in miniature.

use wsp_dft::{DapChain, ShiftMode};
use wsp_tile::isa::{Program, Reg};
use wsp_tile::{Tile, CORES_PER_TILE, GLOBAL_BASE};

/// Encodes a program as a flat little-endian bit stream of 32-bit words
/// (a toy wire format: one word per instruction slot via serde-free
/// structural encoding is overkill here — we ship the *data image* the
/// program works on instead, which is what the JTAG flow mostly moves).
fn words_to_bits(words: &[u32]) -> Vec<bool> {
    words
        .iter()
        .flat_map(|w| (0..32).map(move |i| (w >> i) & 1 == 1))
        .collect()
}

fn bits_to_words(bits: &[bool]) -> Vec<u32> {
    bits.chunks(32)
        .map(|chunk| {
            chunk
                .iter()
                .enumerate()
                .fold(0u32, |acc, (i, &b)| acc | (u32::from(b) << i))
        })
        .collect()
}

#[test]
fn broadcast_data_load_reaches_every_core_intact() {
    // The external controller broadcasts a 32-word data image to all 14
    // DAPs of a tile (the SPMD case), then each core checksums its copy.
    let image: Vec<u32> = (0..32u32)
        .map(|i| i.wrapping_mul(0x9E37_79B9) ^ 0xA5A5)
        .collect();
    let bits = words_to_bits(&image);

    // Ship the image through the bit-accurate DAP chain in broadcast mode.
    let mut chain = DapChain::new(CORES_PER_TILE, bits.len());
    chain.set_mode(ShiftMode::Broadcast);
    for &bit in &bits {
        chain.shift(bit);
    }
    // TCK cost is the broadcast cost, not 14× the serial cost.
    assert_eq!(chain.tcks(), bits.len() as u64);

    // Read each core's register back out of the chain model and place it
    // into that core's private SRAM, as the DAP hardware would.
    let mut tile = Tile::new();
    for core in 0..CORES_PER_TILE {
        // register() returns newest-first; reverse to wire order.
        let mut reg = chain.register(core);
        reg.reverse();
        let words = bits_to_words(&reg);
        assert_eq!(words, image, "core {core} image corrupted in transit");
        for (i, &w) in words.iter().enumerate() {
            tile.core_mut(core)
                .write_private_word((i as u32) * 4, w)
                .expect("fits in SRAM");
        }
    }

    // Every core sums its image and publishes the checksum to shared
    // memory; all fourteen must agree with the host-side sum.
    let expected: u32 = image.iter().fold(0u32, |a, &w| a.wrapping_add(w));
    let program = Program::builder()
        .ldi(Reg::R1, 0) // image pointer
        .ldi(Reg::R2, 32) // words
        .ldi(Reg::R3, 0) // sum
        .ldi(Reg::R0, 0)
        .label("loop")
        .ld(Reg::R4, Reg::R1, 0)
        .add(Reg::R3, Reg::R3, Reg::R4)
        .addi(Reg::R1, Reg::R1, 4)
        .addi(Reg::R2, Reg::R2, -1)
        .bne(Reg::R2, Reg::R0, "loop")
        // shared[core_id*4] = sum
        .ldi(Reg::R5, GLOBAL_BASE)
        .shl(Reg::R6, Reg::R7, 2)
        .add(Reg::R5, Reg::R5, Reg::R6)
        .st(Reg::R3, Reg::R5, 0)
        .halt()
        .build()
        .expect("builds");
    tile.broadcast_program(&program);
    for core in 0..CORES_PER_TILE {
        tile.core_mut(core).set_reg(Reg::R7, core as u32);
    }
    tile.run_until_halt(100_000).expect("halts");
    for core in 0..CORES_PER_TILE {
        assert_eq!(
            tile.read_shared_word(core as u32 * 4).expect("ok"),
            expected,
            "core {core} checksum"
        );
    }
}

#[test]
fn serial_load_delivers_distinct_images_per_core() {
    // Serial mode: each core gets its own 4-word image; the stream is the
    // concatenation, last core's image shifted first (it is farthest from
    // TDI).
    let images: Vec<Vec<u32>> = (0..3u32)
        .map(|c| (0..4u32).map(|i| c * 100 + i).collect())
        .collect();
    let word_bits = 4 * 32;
    let mut chain = DapChain::new(3, word_bits);
    // Shift core 2's image first, then core 1's, then core 0's: after the
    // full shift each register holds its own image.
    for image in images.iter().rev() {
        for bit in words_to_bits(image) {
            chain.shift(bit);
        }
    }
    for (core, image) in images.iter().enumerate() {
        let mut reg = chain.register(core);
        reg.reverse();
        assert_eq!(&bits_to_words(&reg), image, "core {core}");
    }
    // Serial cost = 3 images × 128 bits.
    assert_eq!(chain.tcks(), 3 * word_bits as u64);
}
