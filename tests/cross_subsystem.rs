//! Integration tests pinning down the *agreements between subsystems*
//! that no single crate can check alone.

use wsp_assembly::{BondingModel, ChipletKind, IoCell, PadFrame, RedundancyScheme};
use wsp_clock::{ForwardingSim, TileClock};
use wsp_common::seeded_rng;
use wsp_common::units::Volts;
use wsp_noc::{NetworkChoice, RoutePlanner};
use wsp_pdn::{Ldo, PdnConfig};
use wsp_route::{LayerMode, RouterConfig, WaferNetlist};
use wsp_topo::{FaultMap, TileArray, TileCoord};

#[test]
fn every_pdn_voltage_feeds_a_regulatable_ldo_input() {
    // Fig. 2 (PDN) and Sec. III (LDO) must compose: the droop map the
    // planes produce must lie inside the LDO's designed input range.
    let sol = PdnConfig::paper_prototype().solve().expect("converges");
    let ldo = Ldo::paper_ldo();
    for (tile, vin) in sol.voltages() {
        let clamped = Volts(vin.value().clamp(1.4, 2.5));
        assert!(
            ldo.regulate(clamped).is_ok(),
            "tile {tile} gets {vin} which the LDO cannot regulate"
        );
    }
    // The range the LDO was *specified* for is exactly what the wafer
    // produces: ~1.4 V at the centre, 2.5 V at the ring.
    assert!(sol.min_voltage().value() > 1.35);
    assert!(sol.max_voltage().value() <= 2.5 + 1e-6);
}

#[test]
fn clock_coverage_equals_network_reachability() {
    // A healthy tile is clocked iff the NoC (with relays) can reach it
    // from the clock generator: both are healthy-graph connectivity.
    let array = TileArray::new(16, 16);
    let mut rng = seeded_rng(41);
    for _ in 0..10 {
        let faults = FaultMap::sample_uniform(array, 20, &mut rng);
        let Some(generator) = array.edge_tiles().find(|&t| faults.is_healthy(t)) else {
            continue;
        };
        let plan = ForwardingSim::new(faults.clone())
            .run([generator])
            .expect("ok");
        let planner = RoutePlanner::new(faults.clone());
        for tile in faults.healthy_tiles() {
            if tile == generator {
                continue;
            }
            let clocked = !matches!(plan.state_of(tile), TileClock::Unclocked);
            // Network reachability via at most one relay can be weaker
            // than graph connectivity (mazes), but *disconnection with no
            // clock* must coincide for walled-in tiles.
            if faults.is_isolated(tile) {
                assert!(!clocked, "walled-in tile {tile} cannot be clocked");
                assert_eq!(
                    planner.choose(generator, tile),
                    NetworkChoice::Disconnected,
                    "walled-in tile {tile} cannot be reached"
                );
            }
            if clocked {
                // A clocked tile is graph-connected; a graph-connected
                // tile may still need multi-hop software relaying, but it
                // must never be *isolated*.
                assert!(!faults.is_isolated(tile));
            }
        }
    }
}

#[test]
fn pad_frame_and_netlist_agree_on_network_width() {
    // The router's per-boundary demand (Sec. VIII) must fit inside the
    // pad frame's escape budget (Sec. V): 400-bit links + clock + JTAG
    // on the essential columns of a 2.4 mm edge.
    let frame = PadFrame::paper(ChipletKind::Compute);
    let escape_one_layer = frame.max_escape_wires(PadFrame::PAPER_WIRING_PITCH, 1);
    let demand =
        WaferNetlist::NETWORK_BUNDLE + WaferNetlist::CLOCK_BUNDLE + WaferNetlist::JTAG_BUNDLE;
    assert!(
        demand <= escape_one_layer,
        "per-side demand {demand} exceeds one-layer escape {escape_one_layer}"
    );

    // And the router actually packs that demand into its vertical
    // boundaries: peak L1 use equals the demand.
    let array = TileArray::new(8, 8);
    let config = RouterConfig::paper_config(array, LayerMode::DualLayer);
    let report = config
        .route(&WaferNetlist::generate(array))
        .expect("routes");
    let (l1_used, _) = report
        .peak_utilization(&config)
        .into_iter()
        .find_map(|(l, u, c)| (l == wsp_route::Layer::L1).then_some((u, c)))
        .expect("L1 in use");
    assert_eq!(l1_used, demand);
}

#[test]
fn assembly_yield_predicts_boot_survivors() {
    // Sec. V's closed-form tile yield must agree with the end-to-end
    // Monte-Carlo boot pipeline over many wafers.
    let tile_model = BondingModel::combined_tile_model(
        &BondingModel::paper_compute_chiplet(RedundancyScheme::DualPillar),
        &BondingModel::paper_memory_chiplet(RedundancyScheme::DualPillar),
    );
    let array = TileArray::new(32, 32);
    let expected = tile_model.expected_faulty_chiplets(1024);
    let mut rng = seeded_rng(17);
    let runs = 200;
    let total_faults: usize = (0..runs)
        .map(|_| tile_model.assemble_wafer(array, &mut rng).faulty_count())
        .sum();
    let mean = total_faults as f64 / runs as f64;
    assert!(
        (mean - expected).abs() < 0.15 + 0.3 * expected,
        "MC mean {mean} vs closed form {expected}"
    );
}

#[test]
fn io_energy_budget_covers_network_bandwidth() {
    // Table I cross-check: moving the full 9.83 TB/s through 0.063 pJ/bit
    // I/Os costs only a few watts — negligible next to the 725 W budget,
    // which is the whole point of Si-IF fine-pitch links.
    let cell = IoCell::paper_cell();
    let cfg = waferscale::SystemConfig::paper_prototype();
    let bits_per_second = cfg.network_bandwidth() * 8.0;
    let io_power_watts = bits_per_second * cell.energy_per_bit().value();
    assert!(
        io_power_watts < 10.0,
        "I/O power {io_power_watts:.1} W should be single-digit"
    );
    assert!(io_power_watts > 0.1);
}

#[test]
fn single_layer_route_preserves_everything_the_clock_and_noc_need() {
    // Sec. VIII: with one routing layer the network, clock, and JTAG nets
    // all still route — only second-set memory banks drop.
    let array = TileArray::new(32, 32);
    let config = RouterConfig::paper_config(array, LayerMode::SingleLayer);
    let report = config
        .route(&WaferNetlist::generate(array))
        .expect("routes");
    assert_eq!(report.failed_nets(), 0);
    for dropped in report.dropped() {
        assert!(
            !dropped.class.is_essential(),
            "essential net {} was dropped",
            dropped.id
        );
    }
}

#[test]
fn tap_fsm_grounds_the_test_time_calibration() {
    // The schedule model charges 256 TCKs per 32-bit word loaded. Derive
    // that from the TAP FSM: a DAP memory write is an address-setup scan,
    // a data scan, and a readback/status scan plus retries — about six
    // 35-bit DR scans. Measure one scan's true cost on the bit-accurate
    // controller and check the product lands near the calibration.
    use wsp_dft::tap::{TapController, TapInstruction, DAP_DR_BITS};
    let mut tap = TapController::new(0x4BA0_0477);
    tap.reset();
    tap.load_instruction(TapInstruction::DapAccess);
    let before = tap.tcks();
    tap.scan_dr(&[false; DAP_DR_BITS]);
    let per_scan = tap.tcks() - before;
    let scans_per_word = 6;
    let derived = per_scan * scans_per_word;
    let calibrated = wsp_dft::TestSchedule::TCKS_PER_WORD;
    assert!(
        (derived as f64 / calibrated as f64 - 1.0).abs() < 0.15,
        "derived {derived} TCK/word vs calibrated {calibrated}"
    );
}

#[test]
fn fig4_scenario_is_consistent_across_crates() {
    // The Fig. 4 fault pattern must behave identically whether viewed by
    // the clock simulator, the fault map, or the network planner.
    let (faults, isolated, generator) = wsp_clock::fig4_scenario();
    assert!(faults.is_isolated(isolated));
    let plan = ForwardingSim::new(faults.clone())
        .run([generator])
        .expect("ok");
    assert_eq!(plan.unclocked_tiles().collect::<Vec<_>>(), vec![isolated]);
    let planner = RoutePlanner::new(faults);
    assert_eq!(
        planner.choose(TileCoord::new(0, 0), isolated),
        NetworkChoice::Disconnected
    );
}
