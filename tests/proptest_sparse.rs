//! Property tests for the activity-driven sparse scheduler and the
//! event-wheel skipper: skipping idle tiles (and jumping fully stalled
//! windows) must be *unobservable*. Every fabric report and every
//! machine outcome — stats, architectural memory state, per-core
//! activity counters, the runnable-tiles telemetry sample, the memory
//! profile, the sampled time series, and the digest journal — has to
//! match the dense reference sweep bit for bit, across random seeds,
//! fault maps, and thread counts.

use proptest::prelude::*;
use waferscale::{LatencyModel, MultiTileMachine, SystemConfig};
use wsp_common::parallel::Stepping;
use wsp_common::seeded_rng;
use wsp_noc::{NocSim, SimConfig, TrafficPattern};
use wsp_tile::isa::{Program, Reg};
use wsp_tile::MemoryModelKind;
use wsp_topo::{FaultMap, TileArray};

/// Thread counts exercised against the single-threaded dense baseline.
const THREADS: [usize; 3] = [1, 2, 8];

/// Fault counts for the 16×16 fabric runs (the fig7 scenario ladder).
const FABRIC_FAULTS: [usize; 3] = [0, 5, 15];

/// Fault counts for the 4×4 machine runs.
const MACHINE_FAULTS: [usize; 3] = [0, 1, 3];

/// Memory-timing backends the machine identity property ranges over:
/// the sparse walk must be unobservable on stateful backends too (the
/// execute-then-stall drain keeps a stalled core's tile runnable).
const MEMORY: [MemoryModelKind; 3] = [
    MemoryModelKind::Fixed,
    MemoryModelKind::Banked,
    MemoryModelKind::BankedTlb,
];

/// Runs the NoC traffic simulator on a 16×16 wafer and returns the full
/// report (deliveries, latencies, stalls, backpressure, undeliverables).
fn run_fabric(
    seed: u64,
    fault_count: usize,
    requests: u64,
    pattern: TrafficPattern,
    stepping: Stepping,
    threads: usize,
) -> wsp_noc::SimReport {
    run_fabric_with_capacity(seed, fault_count, requests, pattern, stepping, threads, 4)
}

/// [`run_fabric`] with an explicit ring-buffer FIFO depth, for the
/// wrap-around and recycling properties (capacity 1 wraps the ring on
/// every push/pop pair and maximises backpressure stalls).
#[allow(clippy::too_many_arguments)]
fn run_fabric_with_capacity(
    seed: u64,
    fault_count: usize,
    requests: u64,
    pattern: TrafficPattern,
    stepping: Stepping,
    threads: usize,
    queue_capacity: usize,
) -> wsp_noc::SimReport {
    let array = TileArray::new(16, 16);
    let mut rng = seeded_rng(seed);
    let faults = FaultMap::sample_uniform(array, fault_count, &mut rng);
    let config = SimConfig {
        queue_capacity,
        ..SimConfig::default()
    };
    let mut sim = NocSim::new(faults, config);
    sim.fabric_mut().set_threads(threads);
    sim.fabric_mut().set_stepping(stepping);
    sim.run(pattern, requests, &mut rng)
}

/// Builds a 4×4 fabric-model machine whose healthy tiles all atomically
/// increment one counter on the first healthy tile (a hot-spot with
/// long blocked stretches — the sparse scheduler's hardest case), runs
/// it, and returns everything observable: the stats, the architectural
/// counter word, the per-core activity counters (which the gap replay
/// must reconstruct exactly), and the runnable-tiles sample.
fn run_machine(
    seed: u64,
    fault_count: usize,
    reps: u32,
    stepping: Stepping,
    threads: usize,
    memory: MemoryModelKind,
) -> impl PartialEq + std::fmt::Debug {
    let array = TileArray::new(4, 4);
    let mut rng = seeded_rng(seed);
    let faults = FaultMap::sample_uniform(array, fault_count, &mut rng);
    let cfg = SystemConfig::with_array(array)
        .with_latency_model(LatencyModel::Fabric)
        .with_memory_model(memory);
    let mut m = MultiTileMachine::new(cfg, faults.clone());
    m.set_threads(threads);
    m.set_stepping(stepping);
    // The observability artifacts ride along in the identity tuple: the
    // wheel's bulk gap replay must reproduce the gauge samples and the
    // digest windows of the dense sweep, not just the end state.
    m.set_sampling(8);
    m.set_digests(16);
    let owner = array
        .tiles()
        .find(|&t| !faults.is_faulty(t))
        .expect("some tile survives");
    let counter = m.global_address(owner, 256).expect("mapped");
    let program = Program::builder()
        .ldi(Reg::R1, counter)
        .ldi(Reg::R2, 1)
        .ldi(Reg::R3, reps)
        .ldi(Reg::R0, 0)
        .label("loop")
        .amo_add(Reg::R4, Reg::R1, Reg::R2)
        .addi(Reg::R3, Reg::R3, -1)
        .bne(Reg::R3, Reg::R0, "loop")
        .halt()
        .build()
        .expect("builds");
    for tile in array.tiles() {
        if faults.is_faulty(tile) {
            continue;
        }
        m.load_program(tile, 0, &program).expect("loads");
    }
    // A heavily faulted map can disconnect a tile from the owner, which
    // faults the accessing core — a legitimate outcome that must still
    // match between stepping modes, so the error is part of the tuple.
    let outcome = m.run_until_halt(1_000_000).map_err(|e| format!("{e:?}"));
    let journal = m.journal().expect("digests on").to_text();
    let series: Vec<(String, Vec<(u64, f64)>)> = m
        .timeseries()
        .map(|(name, s)| (name.to_string(), s.points().to_vec()))
        .collect();
    (
        outcome,
        m.read_word(counter).expect("owner is healthy"),
        m.per_tile_activity(),
        m.runnable_tiles().clone(),
        m.memory_profile(),
        journal,
        series,
    )
}

proptest! {
    /// Fabric packet delivery is bit-identical between the dense sweep
    /// and the sparse wake-list walk, at every thread count, over clean
    /// and heavily faulted wafers.
    #[test]
    fn sparse_fabric_matches_dense(
        seed in any::<u64>(),
        fault_idx in 0usize..3,
        requests in 20u64..150,
        threads_idx in 0usize..3,
    ) {
        let faults = FABRIC_FAULTS[fault_idx];
        let threads = THREADS[threads_idx];
        let pattern = TrafficPattern::UniformRandom;
        let dense = run_fabric(seed, faults, requests, pattern, Stepping::Dense, 1);
        let sparse = run_fabric(seed, faults, requests, pattern, Stepping::Sparse, threads);
        prop_assert_eq!(dense, sparse);
    }

    /// Machine architectural state — memory, stats, and the per-core
    /// cycle/stall counters the sparse gap-replay reconstructs — is
    /// bit-identical between stepping modes at every thread count and
    /// under every memory-timing backend.
    #[test]
    fn sparse_machine_matches_dense(
        seed in any::<u64>(),
        fault_idx in 0usize..3,
        reps in 1u32..6,
        threads_idx in 0usize..3,
        mem_idx in 0usize..3,
    ) {
        let faults = MACHINE_FAULTS[fault_idx];
        let threads = THREADS[threads_idx];
        let memory = MEMORY[mem_idx];
        let dense = run_machine(seed, faults, reps, Stepping::Dense, 1, memory);
        let sparse = run_machine(seed, faults, reps, Stepping::Sparse, threads, memory);
        prop_assert_eq!(dense, sparse);
    }

    /// The event wheel's stalled-window jumps are unobservable too: the
    /// same identity tuple (including memory profile, time series, and
    /// digest journal) holds for wheel-vs-dense over random schedules,
    /// fault maps, memory backends, and thread counts.
    #[test]
    fn wheel_machine_matches_dense(
        seed in any::<u64>(),
        fault_idx in 0usize..3,
        reps in 1u32..6,
        threads_idx in 0usize..3,
        mem_idx in 0usize..3,
    ) {
        let faults = MACHINE_FAULTS[fault_idx];
        let threads = THREADS[threads_idx];
        let memory = MEMORY[mem_idx];
        let dense = run_machine(seed, faults, reps, Stepping::Dense, 1, memory);
        let wheel = run_machine(seed, faults, reps, Stepping::Wheel, threads, memory);
        prop_assert_eq!(dense, wheel);
    }

    /// Fabric-level wheel identity: with injections running the wheel
    /// degenerates to the sparse walk, and the drain phase jumps empty
    /// windows — the report must still match the dense sweep exactly.
    #[test]
    fn wheel_fabric_matches_dense(
        seed in any::<u64>(),
        fault_idx in 0usize..3,
        requests in 20u64..150,
        threads_idx in 0usize..3,
    ) {
        let faults = FABRIC_FAULTS[fault_idx];
        let threads = THREADS[threads_idx];
        let pattern = TrafficPattern::UniformRandom;
        let dense = run_fabric(seed, faults, requests, pattern, Stepping::Dense, 1);
        let wheel = run_fabric(seed, faults, requests, pattern, Stepping::Wheel, threads);
        prop_assert_eq!(dense, wheel);
    }

    /// Ring-buffer wrap-around is unobservable: shrinking the FIFO depth
    /// to 1 (every push/pop pair wraps the ring, every contended link
    /// backpressures) still replays the dense reference bit for bit at
    /// every stepping mode and thread count, over faulted wafers.
    #[test]
    fn tiny_ring_capacity_matches_dense(
        seed in any::<u64>(),
        fault_idx in 0usize..3,
        requests in 20u64..150,
        threads_idx in 0usize..3,
        stepping_idx in 0usize..3,
        queue_capacity in 1usize..4,
    ) {
        let faults = FABRIC_FAULTS[fault_idx];
        let threads = THREADS[threads_idx];
        let stepping = [Stepping::Dense, Stepping::Sparse, Stepping::Wheel][stepping_idx];
        let pattern = TrafficPattern::UniformRandom;
        let dense = run_fabric_with_capacity(
            seed, faults, requests, pattern, Stepping::Dense, 1, queue_capacity);
        let other = run_fabric_with_capacity(
            seed, faults, requests, pattern, stepping, threads, queue_capacity);
        prop_assert_eq!(dense, other);
    }

    /// Arena slots are recycled and wake lists pruned across drained
    /// campaigns: repeated traffic runs through one fabric leave no live
    /// arena slots behind, the second and later identical campaigns fit
    /// in recycled slots without growing the columns, and the pruned
    /// wake lists never wedge a later run — at every stepping mode,
    /// thread count, and ring capacity, over faulted wafers.
    #[test]
    fn drained_campaigns_recycle_arena_slots(
        seed in any::<u64>(),
        fault_idx in 0usize..3,
        requests in 20u64..100,
        threads_idx in 0usize..3,
        stepping_idx in 0usize..3,
        queue_capacity in 1usize..4,
    ) {
        let array = TileArray::new(16, 16);
        let mut rng = seeded_rng(seed);
        let faults = FaultMap::sample_uniform(array, FABRIC_FAULTS[fault_idx], &mut rng);
        let config = SimConfig { queue_capacity, ..SimConfig::default() };
        let mut sim = NocSim::new(faults, config);
        sim.fabric_mut().set_threads(THREADS[threads_idx]);
        sim.fabric_mut()
            .set_stepping([Stepping::Dense, Stepping::Sparse, Stepping::Wheel][stepping_idx]);
        let mut footprints = Vec::new();
        for _ in 0..3 {
            let mut rng = seeded_rng(seed);
            let report = sim.run(TrafficPattern::UniformRandom, requests, &mut rng);
            prop_assert_eq!(report.in_flight_at_end, 0);
            prop_assert_eq!(sim.fabric().arena_live(), 0);
            footprints.push(sim.fabric().arena_slots());
        }
        // The footprint is the high-water mark of in-flight packets, so
        // identical later campaigns run almost entirely in recycled
        // slots: the start-cycle alignment of the response-delay wheel
        // can jitter the peak by a slot or two, but a recycling failure
        // would grow the columns by ~2×requests (request + response)
        // per campaign. Pin the former scale, not the latter.
        prop_assert!(
            footprints[2] - footprints[0] <= 8,
            "arena footprint must stay at the round-0 high-water mark: {:?}",
            footprints
        );
    }
}
