//! Cross-crate integration: the full wafer lifecycle from assembly to
//! running workloads, spanning every substrate crate.

use waferscale::workload::{run_bfs, run_sssp, Graph, GraphKind};
use waferscale::{SystemConfig, WaferscaleSystem};
use wsp_common::seeded_rng;
use wsp_topo::{FaultMap, TileArray, TileCoord};

#[test]
fn assemble_boot_and_compute_on_many_seeds() {
    let cfg = SystemConfig::with_array(TileArray::new(8, 8));
    for seed in 0..10u64 {
        let mut rng = seeded_rng(seed);
        let mut system = WaferscaleSystem::assemble(cfg, &mut rng);
        let report = system.boot(&mut rng).expect("boots");
        assert!(report.usable_tiles >= 60, "seed {seed}");

        let graph = Graph::generate(GraphKind::UniformRandom { avg_degree: 6 }, 500, &mut rng);
        let (dist, stats) = run_bfs(&system, &graph, 0).expect("bfs runs");
        assert_eq!(dist, graph.reference_bfs(0), "seed {seed}");
        assert!(stats.cycles > 0);
    }
}

#[test]
fn paper_scale_wafer_boots_and_computes() {
    let cfg = SystemConfig::paper_prototype();
    let mut rng = seeded_rng(99);
    let mut system = WaferscaleSystem::assemble(cfg, &mut rng);
    let report = system.boot(&mut rng).expect("boots");

    // Dual-pillar bonding: essentially the whole wafer survives.
    assert!(report.usable_tiles >= 1020);
    // Fig. 2: the centre tile droops towards ~1.4 V but stays regulatable.
    assert!(report.min_tile_voltage.value() > 1.35);
    // Sec. VII-B: 32-row-chain load finishes in minutes.
    assert!(report.memory_load_time.as_minutes() < 6.0);

    let graph = Graph::generate(GraphKind::PowerLaw { avg_degree: 8 }, 2000, &mut rng);
    let (dist, _) = run_sssp(&system, &graph, 0).expect("sssp runs");
    assert_eq!(dist, graph.reference_sssp(0));
}

#[test]
fn heavily_damaged_wafer_still_computes_correctly() {
    // 12 random faults on an 8x8 wafer (~19% dead) — well beyond what
    // assembly would produce, but the stack must stay correct.
    let cfg = SystemConfig::with_array(TileArray::new(8, 8));
    let mut rng = seeded_rng(7);
    let faults = FaultMap::sample_uniform(cfg.array(), 12, &mut rng);
    let mut system = WaferscaleSystem::with_faults(cfg, faults);
    if system.boot(&mut rng).is_err() {
        // Some fault patterns legitimately kill the system (e.g. the
        // whole edge); that is a valid outcome, not a test failure.
        return;
    }
    let graph = Graph::generate(GraphKind::UniformRandom { avg_degree: 6 }, 600, &mut rng);
    let (bfs, _) = run_bfs(&system, &graph, 0).expect("bfs runs");
    assert_eq!(bfs, graph.reference_bfs(0));
    let (sssp, _) = run_sssp(&system, &graph, 0).expect("sssp runs");
    assert_eq!(sssp, graph.reference_sssp(0));
}

#[test]
fn boot_results_are_deterministic_per_seed() {
    let cfg = SystemConfig::with_array(TileArray::new(8, 8));
    let run = |seed: u64| {
        let mut rng = seeded_rng(seed);
        let mut system = WaferscaleSystem::assemble(cfg, &mut rng);
        let report = system.boot(&mut rng).expect("boots");
        (system.faults().clone(), report)
    };
    let (f1, r1) = run(5);
    let (f2, r2) = run(5);
    assert_eq!(f1, f2);
    assert_eq!(r1, r2);
}

#[test]
fn retired_tiles_never_own_vertices() {
    // After boot retires a walled-in tile, workloads must not place data
    // on it (its owner set comes from the post-boot fault map).
    let cfg = SystemConfig::with_array(TileArray::new(8, 8));
    let array = cfg.array();
    let walled = TileCoord::new(4, 4);
    let ring: Vec<TileCoord> = array.neighbors(walled).collect();
    let mut system = WaferscaleSystem::with_faults(cfg, FaultMap::from_faulty(array, ring));
    let mut rng = seeded_rng(3);
    system.boot(&mut rng).expect("boots");
    assert!(system.faults().is_faulty(walled));

    let graph = Graph::generate(GraphKind::Grid2d, 400, &mut rng);
    let (dist, _) = run_bfs(&system, &graph, 0).expect("bfs runs");
    assert_eq!(dist, graph.reference_bfs(0));
}
