//! Property tests for the deterministic multi-threaded backend: the
//! parallel fabric, machine, and PDN paths must match their sequential
//! counterparts — bit for bit for the discrete simulators, within a
//! microvolt for the red/black SOR reordering.

use proptest::prelude::*;
use waferscale::{LatencyModel, MultiTileMachine, SystemConfig};
use wsp_common::seeded_rng;
use wsp_common::units::{Amps, Ohms, Volts};
use wsp_noc::{NocSim, SimConfig, TrafficPattern};
use wsp_pdn::{LoadModel, PdnConfig};
use wsp_tile::isa::{Program, Reg};
use wsp_topo::{FaultMap, TileArray, TileCoord};

/// Runs the NoC traffic simulator with the fabric sharded over
/// `threads` workers and returns the full report.
fn run_noc(seed: u64, fault_count: usize, requests: u64, threads: usize) -> wsp_noc::SimReport {
    let array = TileArray::new(8, 8);
    let mut rng = seeded_rng(seed);
    let faults = FaultMap::sample_uniform(array, fault_count, &mut rng);
    let mut sim = NocSim::new(faults, SimConfig::default());
    sim.fabric_mut().set_threads(threads);
    sim.run(TrafficPattern::UniformRandom, requests, &mut rng)
}

/// A small fabric-model machine where every tile's core 0 sums a halo of
/// words from its east neighbour's memory — dense cross-tile traffic.
fn run_machine(n: u16, threads: usize) -> waferscale::MachineStats {
    let array = TileArray::new(n, n);
    let cfg = SystemConfig::with_array(array).with_latency_model(LatencyModel::Fabric);
    let mut m = MultiTileMachine::new(cfg, FaultMap::none(array));
    m.set_threads(threads);
    for y in 0..n {
        for x in 0..n {
            let east = TileCoord::new((x + 1) % n, y);
            let base = m.global_address(east, 0).expect("mapped");
            let program = Program::builder()
                .ldi(Reg::R1, base)
                .ldi(Reg::R5, 0)
                .ldi(Reg::R3, 4)
                .ldi(Reg::R0, 0)
                .label("halo")
                .ld(Reg::R2, Reg::R1, 0)
                .add(Reg::R5, Reg::R5, Reg::R2)
                .addi(Reg::R1, Reg::R1, 4)
                .addi(Reg::R3, Reg::R3, -1)
                .bne(Reg::R3, Reg::R0, "halo")
                .halt()
                .build()
                .expect("builds");
            m.load_program(TileCoord::new(x, y), 0, &program)
                .expect("loads");
        }
    }
    m.run_until_halt(100_000).expect("halts")
}

/// A PDN instance over an `n×n` grid with a per-tile current ramp.
fn pdn_config(n: u16, milliamps: f64) -> PdnConfig {
    PdnConfig::new(
        TileArray::new(n, n),
        Volts(2.5),
        Ohms::from_milliohms(2.0),
        Ohms::from_milliohms(1.0),
        LoadModel::ConstantCurrent(Amps(milliamps / 1e3)),
        [true; 4],
    )
}

proptest! {
    /// The band-parallel fabric step replays the sequential run bit for
    /// bit at every thread count: the full `SimReport` (latencies,
    /// throughput, stall counters) is `Eq`-identical.
    #[test]
    fn parallel_fabric_is_bit_identical_to_sequential(
        seed in any::<u64>(),
        fault_count in 0usize..5,
        requests in 20u64..120,
        threads in 2usize..9,
    ) {
        let sequential = run_noc(seed, fault_count, requests, 1);
        let parallel = run_noc(seed, fault_count, requests, threads);
        prop_assert_eq!(sequential, parallel);
    }

    /// The parallel tile step + sequential fabric commit preserves every
    /// machine statistic exactly, thread count notwithstanding.
    #[test]
    fn parallel_machine_is_bit_identical_to_sequential(
        n in 2u16..5,
        threads in 2usize..9,
    ) {
        let sequential = run_machine(n, 1);
        let parallel = run_machine(n, threads);
        prop_assert_eq!(sequential, parallel);
    }

    /// Red/black SOR converges to the same solution as the sequential
    /// lexicographic sweep within a microvolt per tile, and its own
    /// output is bit-identical at any thread count.
    #[test]
    fn red_black_pdn_matches_lexicographic_within_a_microvolt(
        n in 2u16..12,
        milliamps in 10.0f64..200.0,
        threads in 2usize..9,
    ) {
        let cfg = pdn_config(n, milliamps);
        let lex = cfg.solve().expect("lexicographic converges");
        let rb1 = cfg.solve_parallel(1).expect("red/black converges");
        let rbn = cfg.solve_parallel(threads).expect("red/black converges");

        for ((tile, a), (_, b)) in lex.voltages().zip(rb1.voltages()) {
            prop_assert!(
                (a.value() - b.value()).abs() < 1e-6,
                "tile {tile}: lexicographic {} vs red/black {}",
                a.value(),
                b.value()
            );
        }
        let v1: Vec<f64> = rb1.voltages().map(|(_, v)| v.value()).collect();
        let vn: Vec<f64> = rbn.voltages().map(|(_, v)| v.value()).collect();
        prop_assert_eq!(v1, vn);
    }
}
