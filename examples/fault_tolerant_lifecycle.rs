//! Fault-tolerance walkthrough: what happens to a wafer with a nasty
//! fault pattern — clock forwarding around dead tiles, progressive JTAG
//! localisation, and kernel network planning with relays.
//!
//! Run with `cargo run --example fault_tolerant_lifecycle`.

use waferscale::{SystemConfig, WaferscaleSystem};
use wsp_clock::ForwardingSim;
use wsp_dft::ProgressiveUnroll;
use wsp_noc::{NetworkChoice, RoutePlanner};
use wsp_topo::{FaultMap, TileArray, TileCoord};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let array = TileArray::new(8, 8);

    // A deliberately nasty pattern: one tile walled in on all four sides
    // (unusable no matter what) plus a blocked row segment.
    let walled = TileCoord::new(5, 3);
    let faults = FaultMap::from_faulty(
        array,
        [
            TileCoord::new(5, 2),
            TileCoord::new(4, 3),
            TileCoord::new(6, 3),
            TileCoord::new(5, 4),
            TileCoord::new(2, 6),
        ],
    );
    println!("fault map ('X' = failed bond):\n{faults}");

    // --- Clock setup (Sec. IV / Fig. 4) -------------------------------
    let plan = ForwardingSim::new(faults.clone()).run([TileCoord::new(0, 0)])?;
    println!("clock forwarding (G=generator, arrows=selected input):");
    println!("{}", plan.to_ascii());
    println!(
        "clocked {}/{} tiles; unclocked: {:?}",
        plan.clocked_count(),
        array.tile_count(),
        plan.unclocked_tiles().collect::<Vec<_>>()
    );

    // --- Progressive JTAG unrolling (Sec. VII / Fig. 10) --------------
    for y in [3u16, 6] {
        let outcome = ProgressiveUnroll::new(8, 32)
            .run(|pos| faults.is_healthy(TileCoord::new(pos as u16, y)));
        println!("row {y} chain: {outcome}");
    }

    // --- Kernel network planning (Sec. VI / Fig. 7) -------------------
    let planner = RoutePlanner::new(faults.clone());
    let pairs = [
        (TileCoord::new(0, 0), TileCoord::new(7, 7)),
        (TileCoord::new(0, 3), TileCoord::new(7, 3)), // blocked row
        (TileCoord::new(1, 1), walled),               // unreachable
    ];
    for (s, d) in pairs {
        match planner.choose(s, d) {
            NetworkChoice::Direct(n) => println!("{s} -> {d}: direct on {n}"),
            NetworkChoice::Relay { via, .. } => {
                println!("{s} -> {d}: relayed via {via} (costs core cycles there)")
            }
            NetworkChoice::Disconnected => println!("{s} -> {d}: disconnected"),
        }
    }

    // --- Full boot retires the walled-in tile --------------------------
    let config = SystemConfig::with_array(array);
    let mut system = WaferscaleSystem::with_faults(config, faults);
    let mut rng = wsp_common::seeded_rng(9);
    let report = system.boot(&mut rng)?;
    println!("{report}");
    assert!(system.faults().is_faulty(walled));
    println!("walled-in tile {walled} was retired by the boot flow");
    Ok(())
}
