//! Power-aware workload analysis: feed a graph workload's data placement
//! into the PDN solver and see how the computation's shape changes the
//! droop map — hub-heavy graphs concentrate current on hub-owning tiles.
//!
//! Run with `cargo run --release --example power_aware_workloads`.

use waferscale::workload::{activity_power_map, Graph, GraphKind};
use waferscale::{SystemConfig, WaferscaleSystem};
use wsp_pdn::{Ldo, PdnConfig};
use wsp_topo::FaultMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = SystemConfig::paper_prototype();
    let system = WaferscaleSystem::with_faults(config, FaultMap::none(config.array()));
    let mut rng = wsp_common::seeded_rng(77);
    let pdn = PdnConfig::paper_prototype();
    let ldo = Ldo::paper_ldo();

    println!("workload-driven droop on the full 32x32 wafer:\n");
    println!(
        "{:<28} {:>10} {:>12} {:>14}",
        "workload", "min V", "max droop", "LDO margin"
    );

    for (name, kind) in [
        (
            "uniform random d=16",
            GraphKind::UniformRandom { avg_degree: 16 },
        ),
        ("2-D grid (stencil-like)", GraphKind::Grid2d),
        (
            "power law d=16 (hubs!)",
            GraphKind::PowerLaw { avg_degree: 16 },
        ),
    ] {
        let graph = Graph::generate(kind, 100_000, &mut rng);
        let currents = activity_power_map(&system, &graph);
        let sol = pdn.solve_with_tile_currents(&currents)?;
        let min_v = sol.min_voltage();
        // Margin above the LDO's minimum usable input.
        let (min_in, _) = ldo.input_range();
        println!(
            "{:<28} {:>9.3}V {:>10.3}V {:>12.0} mV",
            name,
            min_v.value(),
            sol.max_droop().value(),
            (min_v - min_in).as_millivolts()
        );
    }

    // The all-on worst case the paper budgets for (Fig. 2).
    let peak = pdn.solve()?;
    println!(
        "{:<28} {:>9.3}V {:>10.3}V {:>12.0} mV   <- Fig. 2 budget",
        "ALL tiles at peak power",
        peak.min_voltage().value(),
        peak.max_droop().value(),
        (peak.min_voltage() - ldo.input_range().0).as_millivolts()
    );

    println!(
        "\nEvery workload stays inside the Fig. 2 envelope: the PDN was\n\
         sized for the all-on worst case, so real (unevenly loaded)\n\
         workloads always see more margin."
    );
    Ok(())
}
