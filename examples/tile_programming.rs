//! Programming one tile directly: build a small kernel in the core ISA,
//! broadcast it to all 14 cores (the SPMD idiom the JTAG broadcast mode
//! exists for), and reduce the per-core results through shared memory.
//!
//! Run with `cargo run --example tile_programming`.

use wsp_tile::isa::{Program, Reg};
use wsp_tile::{Tile, CORES_PER_TILE, GLOBAL_BASE};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Each core computes the sum 1..=N for its own N (passed in R2) and
    // stores the result into shared memory slot `core_id`.
    let kernel = Program::builder()
        .ldi(Reg::R0, 0)
        .mov(Reg::R3, Reg::R2) // N = core-specific argument
        .ldi(Reg::R4, 0) // accumulator
        .label("loop")
        .add(Reg::R4, Reg::R4, Reg::R3)
        .addi(Reg::R3, Reg::R3, -1)
        .bne(Reg::R3, Reg::R0, "loop")
        // shared[core_id * 4] = sum
        .ldi(Reg::R5, GLOBAL_BASE)
        .shl(Reg::R6, Reg::R1, 2)
        .add(Reg::R5, Reg::R5, Reg::R6)
        .st(Reg::R4, Reg::R5, 0)
        .halt()
        .build()?;

    let mut tile = Tile::new();
    tile.broadcast_program(&kernel);
    for core in 0..CORES_PER_TILE {
        tile.core_mut(core).set_reg(Reg::R1, core as u32); // core id
        tile.core_mut(core).set_reg(Reg::R2, (core as u32 + 1) * 10); // N
    }

    let stats = tile.run_until_halt(1_000_000)?;
    println!(
        "tile ran {} cycles, retired {} instructions, {} shared accesses, {} bank conflicts",
        stats.cycles, stats.retired, stats.shared_accesses, stats.bank_conflicts
    );

    let mut total = 0u64;
    for core in 0..CORES_PER_TILE {
        let sum = tile.read_shared_word(core as u32 * 4)?;
        let n = (core as u32 + 1) * 10;
        assert_eq!(sum, n * (n + 1) / 2, "core {core} result");
        println!("  core {core:2}: sum 1..={n:3} = {sum}");
        total += u64::from(sum);
    }
    println!("grand total across the tile: {total}");
    Ok(())
}
