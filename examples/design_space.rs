//! Design-space exploration: use the analysis crates the way the paper's
//! authors did — to *choose* between design alternatives before building.
//!
//! Sweeps: supply voltage for the PDN, pillar redundancy for assembly,
//! one vs two networks for fault tolerance, and chain count for test time.
//!
//! Run with `cargo run --release --example design_space`.

use wsp_assembly::{BondingModel, RedundancyScheme};
use wsp_common::units::{Hertz, Volts};
use wsp_dft::TestSchedule;
use wsp_noc::ConnectivitySweep;
use wsp_pdn::{Ldo, PdnConfig};
use wsp_topo::TileCoord;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Q1 (Sec. III): what edge supply voltage actually works? -------
    println!("Q1: edge supply voltage vs centre-tile regulation");
    let ldo = Ldo::paper_ldo();
    for supply_mv in [1800, 2100, 2500, 3000] {
        let supply = Volts::from_millivolts(f64::from(supply_mv));
        let cfg = PdnConfig::new(
            PdnConfig::paper_prototype().array(),
            supply,
            PdnConfig::PAPER_LOOP_SHEET_RESISTANCE,
            wsp_common::units::Ohms::from_milliohms(1.0),
            wsp_pdn::LoadModel::ConstantCurrent(PdnConfig::PAPER_TILE_CURRENT),
            [true; 4],
        );
        let sol = cfg.solve()?;
        let centre = sol.voltage_at(TileCoord::new(16, 16));
        let ok = ldo.accepts_input(Volts(centre.value().min(2.5)));
        println!(
            "  {supply_mv} mV edge -> centre {:.2} V: LDO {}",
            centre.value(),
            if ok {
                "regulates"
            } else {
                "FAILS (below dropout)"
            }
        );
    }

    // --- Q3 (Sec. V): how much pillar redundancy is enough? ------------
    println!("\nQ3: pillars per pad vs expected faulty chiplets per wafer");
    for scheme in [RedundancyScheme::SinglePillar, RedundancyScheme::DualPillar] {
        let m = BondingModel::paper_compute_chiplet(scheme);
        println!(
            "  {scheme}: chiplet yield {:.3}%, E[faulty]/2048 = {:.1}",
            m.chiplet_yield() * 100.0,
            m.expected_faulty_chiplets(2048)
        );
    }

    // --- Q4 (Sec. VI): is one network enough? --------------------------
    println!("\nQ4: % tile pairs losing round-trip connectivity (5 faults)");
    let point = ConnectivitySweep::paper_sweep(50).run_point(5, 7);
    println!(
        "  single network: {:.1}%   two networks: {:.2}%",
        point.single_network * 100.0,
        point.dual_network * 100.0
    );

    // --- Q5 (Sec. VII): how many JTAG chains do we need? ---------------
    println!("\nQ5: chains vs whole-wafer load time");
    for chains in [1u32, 8, 32] {
        let schedule = TestSchedule::new(chains, Hertz::from_megahertz(10.0), false);
        let t = schedule.memory_load_time(TestSchedule::PAPER_TOTAL_LOAD_BYTES);
        println!("  {chains:2} chains: {:.1} min", t.as_minutes());
    }
    Ok(())
}
