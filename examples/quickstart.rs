//! Quickstart: assemble a waferscale system, boot it, and run a graph
//! workload on the unified shared memory.
//!
//! Run with `cargo run --example quickstart`.

use waferscale::workload::{run_bfs, Graph, GraphKind};
use waferscale::{SystemConfig, WaferscaleSystem};
use wsp_topo::TileArray;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe the system. The paper's prototype is 32x32 tiles; an
    //    8x8 keeps the example fast (same architecture, FPGA-demo scale).
    let config = SystemConfig::with_array(TileArray::new(8, 8));
    println!("system: {config}");
    println!(
        "  {} cores, {} MB shared memory, {:.2} TB/s network",
        config.total_cores(),
        config.total_shared_memory() / (1024 * 1024),
        config.network_bandwidth() / 1e12
    );

    // 2. Assemble the wafer. Chiplet bonding is stochastic: the dual
    //    copper-pillar redundancy makes failures rare but not impossible.
    let mut rng = wsp_common::seeded_rng(2024);
    let mut system = WaferscaleSystem::assemble(config, &mut rng);
    println!(
        "assembled: {} of {} tiles bonded healthy",
        system.faults().healthy_count(),
        config.tile_count()
    );

    // 3. Boot: power-on analysis, clock forwarding from an edge tile,
    //    JTAG fault localisation, program/data load.
    let report = system.boot(&mut rng)?;
    println!("{report}");

    // 4. Run breadth-first search over the unified shared memory and
    //    check the answer against a sequential reference.
    let graph = Graph::generate(GraphKind::UniformRandom { avg_degree: 8 }, 5_000, &mut rng);
    let (dist, stats) = run_bfs(&system, &graph, 0)?;
    assert_eq!(dist, graph.reference_bfs(0), "distributed BFS must agree");
    println!(
        "BFS over {} vertices / {} edges: {stats}",
        graph.vertex_count(),
        graph.edge_count()
    );
    println!(
        "  -> {:.0} MTEPS at {:.0} MHz",
        stats.mteps(&config),
        config.frequency().as_megahertz()
    );
    Ok(())
}
