//! Substrate design flow: generate the wafer netlist, run the jog-free
//! router on two layers, verify with the independent DRC, and show the
//! single-layer degraded mode the chiplet I/O plan was designed around.
//!
//! Run with `cargo run --release --example substrate_design`.

use wsp_route::{check_route, LayerMode, RouterConfig, WaferNetlist};
use wsp_topo::{ReticleGrid, TileArray};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let array = TileArray::new(32, 32);
    let grid = ReticleGrid::paper_grid(array);
    println!("wafer: {array}, stepped as {grid}");

    // The netlist is generated, not read: the substrate is fully regular.
    let netlist = WaferNetlist::generate(array);
    println!(
        "netlist: {} nets, {:.2} M wires",
        netlist.nets().len(),
        netlist.total_wires() as f64 / 1e6
    );

    // Route on both signal layers.
    let config = RouterConfig::paper_config(array, LayerMode::DualLayer);
    let report = config.route(&netlist)?;
    println!("dual-layer: {report}");
    for (layer, used, cap) in report.peak_utilization(&config) {
        println!(
            "  {layer}: peak {used}/{cap} tracks ({:.0}%)",
            f64::from(used) / f64::from(cap) * 100.0
        );
    }
    println!(
        "  {} wires widened 2um -> 3um at reticle stitching boundaries",
        report.fat_wires()
    );

    // Independent design-rule check (the router never vouches for itself).
    let violations = check_route(&report, &config);
    println!("  DRC: {} violations", violations.len());
    assert!(violations.is_empty());

    // The insurance policy: if the second routing layer doesn't yield,
    // the essential I/O columns alone still give a working processor.
    let degraded = RouterConfig::paper_config(array, LayerMode::SingleLayer);
    let report = degraded.route(&netlist)?;
    println!("single-layer: {report}");
    println!(
        "  system still fully routed; shared memory capacity reduced {:.0}%",
        report.memory_capacity_loss() * 100.0
    );
    assert_eq!(report.failed_nets(), 0);
    Ok(())
}
