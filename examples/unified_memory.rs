//! The unified-memory showcase: ISA programs on different tiles
//! communicating through the single global address space — remote loads,
//! stores, atomics, and a flag handshake, with the network charging
//! latency by distance.
//!
//! Run with `cargo run --release --example unified_memory`.

use waferscale::{MultiTileMachine, SystemConfig};
use wsp_tile::isa::{Program, Reg};
use wsp_topo::{FaultMap, TileArray, TileCoord};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = SystemConfig::with_array(TileArray::new(4, 4));
    let mut machine = MultiTileMachine::new(config, FaultMap::none(config.array()));

    // A global work counter lives on tile (0,0); results live on (3,3).
    let counter = machine.global_address(TileCoord::new(0, 0), 0)?;
    let results = machine.global_address(TileCoord::new(3, 3), 0)?;

    // Every core on every tile: atomically grab work items (0..N) from
    // the shared counter and write item² into the result array — a
    // self-scheduling worker pool over the whole wafer section.
    let items: u32 = 200;
    let worker = Program::builder()
        .ldi(Reg::R1, counter)
        .ldi(Reg::R2, 1)
        .ldi(Reg::R5, items)
        .ldi(Reg::R6, results)
        .label("grab")
        .amo_add(Reg::R3, Reg::R1, Reg::R2) // R3 = my item
        .blt(Reg::R3, Reg::R5, "work")
        .halt()
        .label("work")
        .mul(Reg::R4, Reg::R3, Reg::R3) // item²
        .shl(Reg::R7, Reg::R3, 2)
        .add(Reg::R7, Reg::R7, Reg::R6)
        .st(Reg::R4, Reg::R7, 0)
        .jmp("grab")
        .build()?;

    for tile in config.array().tiles() {
        for core in 0..config.cores_per_tile() {
            machine.load_program(tile, core, &worker)?;
        }
    }
    let stats = machine.run_until_halt(10_000_000)?;

    // Verify every item was computed exactly once, by someone.
    for item in 0..items {
        let got = machine.read_word(results + item * 4)?;
        assert_eq!(got, item * item, "item {item}");
    }
    println!(
        "{} cores across 16 tiles self-scheduled {items} work items through one\n\
         atomic counter in {} cycles ({} remote / {} local shared accesses).",
        config.total_cores(),
        stats.cycles,
        stats.remote_accesses,
        stats.local_accesses,
    );
    println!("every result verified: unified shared memory works at the ISA level");
    Ok(())
}
