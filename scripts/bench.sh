#!/usr/bin/env bash
# Perf-trajectory harness: runs the headline regenerator binaries with
# machine-readable output and validates every artefact.
#
#   ./scripts/bench.sh             # full runs -> BENCH_*.json + TRACE_machine.json
#   ./scripts/bench.sh --smoke     # seconds-scale reduced runs (the CI gate)
#   ./scripts/bench.sh --criterion # also run the arena_vs_vecdeque
#                                  # micro-bench (criterion, ~1 min)
#
# Set WSP_THREADS=<n> to pin the simulation backend's worker count
# (forwarded as --threads to every binary); the default is the host's
# available parallelism. Results are bit-identical either way — the
# knob only affects wall-clock and the speedup gauges.
#
# Artefacts land in the repo root:
#   BENCH_noc.json       fig7_network  (NoC request/response metrics)
#   BENCH_machine.json   workloads     (kernel + traced-stencil metrics;
#                                       full runs add the machine.memory.*
#                                       row-buffer fidelity sweep)
#   BENCH_pdn.json       fig2_droop    (IR-drop / SOR-solver metrics)
#   BENCH_serve.json     serve         (wafer-as-a-service campaign:
#                                       queueing-latency p50/p95/p99,
#                                       slice utilisation, jobs/s)
#   TRACE_machine.json   workloads     (Chrome trace: machine, fabric,
#                                       pdn, clock, and dft spans —
#                                       open in ui.perfetto.dev)
set -euo pipefail
cd "$(dirname "$0")/.."

SMOKE=()
CRITERION=0
for arg in "$@"; do
    case "$arg" in
        --smoke) SMOKE=(--smoke) ;;
        --criterion) CRITERION=1 ;;
        *)
            echo "usage: $0 [--smoke] [--criterion]" >&2
            exit 2
            ;;
    esac
done

THREADS=()
if [[ -n "${WSP_THREADS:-}" ]]; then
    THREADS=(--threads "$WSP_THREADS")
fi

echo "==> cargo build --release -p wsp-bench"
cargo build --release -p wsp-bench

run() {
    local bin="$1"
    shift
    echo "==> $bin $*"
    "target/release/$bin" "$@" >/dev/null
}

run fig7_network "${SMOKE[@]}" "${THREADS[@]}" --json BENCH_noc.json
run workloads "${SMOKE[@]}" "${THREADS[@]}" --json BENCH_machine.json --trace TRACE_machine.json
run fig2_droop "${SMOKE[@]}" "${THREADS[@]}" --json BENCH_pdn.json
run serve "${SMOKE[@]}" "${THREADS[@]}" --json BENCH_serve.json

echo "==> validate_json"
target/release/validate_json \
    BENCH_noc.json BENCH_machine.json BENCH_pdn.json BENCH_serve.json \
    TRACE_machine.json

# Full runs record wall.profile.* gauges; smoke runs print an empty
# table (the profiler is disabled so the smoke JSON stays deterministic).
echo "==> phase profile (wsp-diff profile)"
target/release/wsp-diff profile BENCH_noc.json BENCH_machine.json BENCH_pdn.json

if [[ "$CRITERION" == 1 ]]; then
    echo "==> criterion: arena_vs_vecdeque (data-layout micro-bench)"
    cargo bench -p wsp-bench --bench arena_vs_vecdeque
fi

echo "Bench artefacts written and validated."
