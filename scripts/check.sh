#!/usr/bin/env bash
# CI-style gate: formatting, lints, and the tier-1 build + test pass.
# Run from anywhere: ./scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test"
cargo test -q

echo "==> bench smoke (BENCH_*.json present and well-formed)"
./scripts/bench.sh --smoke

echo "All checks passed."
