#!/usr/bin/env bash
# CI-style gate: formatting, lints, and the tier-1 build + test pass.
# Run from anywhere: ./scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test"
cargo test -q

echo "==> bench smoke (BENCH_*.json present and well-formed)"
./scripts/bench.sh --smoke

echo "==> determinism gate (fig7_network smoke JSON, 1 thread vs 8)"
# The parallel backend must be bit-identical to sequential: the smoke
# JSON (which carries only deterministic metrics, no wall-clock gauges)
# has to match byte for byte across thread counts.
DET_DIR="$(mktemp -d)"
trap 'rm -rf "$DET_DIR"' EXIT
target/release/fig7_network --smoke --threads 1 --json "$DET_DIR/t1.json" >/dev/null
target/release/fig7_network --smoke --threads 8 --json "$DET_DIR/t8.json" >/dev/null
if ! cmp -s "$DET_DIR/t1.json" "$DET_DIR/t8.json"; then
    echo "FAIL: fig7_network smoke JSON differs between --threads 1 and --threads 8" >&2
    diff "$DET_DIR/t1.json" "$DET_DIR/t8.json" >&2 || true
    exit 1
fi
echo "    byte-identical across thread counts"

echo "All checks passed."
