#!/usr/bin/env bash
# CI-style gate: formatting, lints, and the tier-1 build + test pass.
# Run from anywhere: ./scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test"
cargo test -q

echo "==> perf-shape gate (committed phase profile takes the fused fast path)"
# The committed full-run BENCH_noc.json pins the *shape* of the fabric
# hot loop, not its wall-clock (ms gauges stay outside tolerances, as
# wsp-diff does): the full-wafer section must have executed on the fused
# single-pass plan+apply path. A `fused.calls` counter must be present,
# and the split-path `plan.calls` / `apply.calls` counters must not be —
# their reappearance means single-shard ticks silently fell back to the
# two-pass split, the exact constant-factor regression the data-oriented
# rewrite removed.
if ! grep -q '"wall.profile.fabric.full_wafer.fused.calls"' BENCH_noc.json; then
    echo "FAIL: BENCH_noc.json lacks wall.profile.fabric.full_wafer.fused.calls" >&2
    echo "      (full-wafer fabric ticks no longer take the fused fast path)" >&2
    exit 1
fi
for phase in plan apply; do
    if grep -q "\"wall.profile.fabric.full_wafer.$phase.calls\"" BENCH_noc.json; then
        echo "FAIL: BENCH_noc.json records wall.profile.fabric.full_wafer.$phase.calls" >&2
        echo "      (single-shard full-wafer ticks regressed to the two-pass split)" >&2
        exit 1
    fi
done
echo "    committed full-wafer profile is fused-only"

echo "==> bench smoke (BENCH_*.json present and well-formed)"
./scripts/bench.sh --smoke

echo "==> determinism gate (smoke JSON vs tests/golden, {dense,sparse,wheel} x {1,8} threads)"
# Two claims at once: (1) the parallel backend, the sparse active-set
# scheduler, and the event-wheel skipper are bit-identical to the
# sequential dense sweep, and (2) the
# default fixed-latency memory backend is byte-identical to the
# pre-MemoryModel-refactor seed output committed under tests/golden/.
# The smoke JSON carries only deterministic metrics (no wall-clock
# gauges), so every run must match the golden file byte for byte.
# Refresh the goldens with WSP_UPDATE_GOLDEN=1 after an intentional
# metrics change.
DET_DIR="$(mktemp -d)"
trap 'rm -rf "$DET_DIR"' EXIT
if [ "${WSP_UPDATE_GOLDEN:-0}" = "1" ]; then
    target/release/fig7_network --smoke --stepping dense --threads 1 \
        --json tests/golden/fig7_network_smoke.json >/dev/null
    target/release/workloads --smoke --stepping dense --threads 1 \
        --json tests/golden/workloads_smoke.json >/dev/null
    target/release/serve --smoke --stepping dense --threads 1 \
        --json tests/golden/serve_smoke.json >/dev/null
    echo "    refreshed tests/golden/*.json (+ .digest sidecars)"
fi
for bin in fig7_network workloads serve; do
    golden="tests/golden/${bin}_smoke.json"
    for stepping in dense sparse wheel; do
        for threads in 1 8; do
            out="$DET_DIR/$bin-$stepping-t$threads.json"
            target/release/"$bin" --smoke --stepping "$stepping" --threads "$threads" \
                --json "$out" >/dev/null
            if ! cmp -s "$golden" "$out"; then
                echo "FAIL: $bin smoke JSON differs from $golden at $stepping/$threads" >&2
                diff "$golden" "$out" >&2 || true
                exit 1
            fi
            # The digest sidecar must match too; on divergence wsp-diff
            # pinpoints the first bad cycle window and lane.
            if ! cmp -s "$golden.digest" "$out.digest"; then
                echo "FAIL: $bin digest journal diverged from $golden.digest at $stepping/$threads" >&2
                target/release/wsp-diff digest "$golden.digest" "$out.digest" >&2 || true
                exit 1
            fi
        done
    done
done
echo "    byte-identical to the goldens across stepping modes and thread counts"

echo "==> serve snapshot gate (snapshot -> restore -> resume is bit-identical)"
# Checkpoint a serving campaign after 9 of its 24 smoke jobs, restore it
# in a fresh process, run the remainder, and demand the resumed run's
# report and digest journal are byte-equal to the golden uninterrupted
# run. This is the wafer-as-a-service durability contract: a campaign
# interrupted at any completion boundary resumes bit-identically.
target/release/serve --smoke --snapshot "$DET_DIR/serve.snap" --snapshot-after 9 >/dev/null
target/release/serve --smoke --restore "$DET_DIR/serve.snap" \
    --json "$DET_DIR/serve-resumed.json" >/dev/null
for suffix in "" ".digest"; do
    if ! cmp -s "tests/golden/serve_smoke.json$suffix" "$DET_DIR/serve-resumed.json$suffix"; then
        echo "FAIL: resumed serve campaign diverged from golden (serve_smoke.json$suffix)" >&2
        [ -n "$suffix" ] && target/release/wsp-diff digest \
            "tests/golden/serve_smoke.json.digest" "$DET_DIR/serve-resumed.json.digest" >&2 || true
        exit 1
    fi
done
echo "    snapshot/restore roundtrip matches the uninterrupted golden run"

echo "==> wsp-diff regression gate (bench JSON vs committed baselines)"
# The tolerance-gated diff must pass on the baselines themselves...
for bin in fig7_network workloads serve; do
    target/release/wsp-diff bench --tolerances tests/golden/tolerances.txt \
        "tests/golden/${bin}_smoke.json" "$DET_DIR/$bin-dense-t1.json" \
        | sed 's/^/    /'
done
# ...and must trip on a synthetic out-of-tolerance metric change.
sed 's/"fabric.cycles":[0-9.]*/"fabric.cycles":1/' \
    "$DET_DIR/fig7_network-dense-t1.json" > "$DET_DIR/mutated.json"
if target/release/wsp-diff bench --tolerances tests/golden/tolerances.txt \
    "tests/golden/fig7_network_smoke.json" "$DET_DIR/mutated.json" >/dev/null; then
    echo "FAIL: wsp-diff bench did not flag a mutated metric" >&2
    exit 1
fi
echo "    gate passes on baselines and catches a synthetic regression"


echo "==> flag-doc drift gate (every BenchOpts flag is documented in README.md)"
# The README's "Performance knobs" table must mention every flag string
# the bench option parser accepts — a new flag without documentation (or
# a renamed flag leaving its old name behind in the README) fails here.
# Only the code above the #[cfg(test)] module counts: tests exercise fake
# flags (e.g. --frobnicate) to probe the unknown-flag error path.
flags=$(awk '/#\[cfg\(test\)\]/ { exit } { print }' crates/bench/src/lib.rs \
    | grep -o '"--[a-z-]*"' | tr -d '"' | sort -u)
for flag in $flags; do
    if ! grep -q -- "$flag" README.md; then
        echo "FAIL: flag $flag (crates/bench/src/lib.rs) is not documented in README.md" >&2
        exit 1
    fi
done
echo "    all $(echo "$flags" | wc -w) bench flags documented"

echo "==> banked memory smoke (--memory banked answers stay correct)"
target/release/workloads --smoke --memory banked > "$DET_DIR/banked.txt"
if grep -q "| false" "$DET_DIR/banked.txt"; then
    echo "FAIL: banked-memory smoke run reported an incorrect kernel answer" >&2
    grep "| false" "$DET_DIR/banked.txt" >&2
    exit 1
fi
echo "    banked backend runs clean"

echo "All checks passed."
