#!/usr/bin/env bash
# CI-style gate: formatting, lints, and the tier-1 build + test pass.
# Run from anywhere: ./scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test"
cargo test -q

echo "==> bench smoke (BENCH_*.json present and well-formed)"
./scripts/bench.sh --smoke

echo "==> determinism gate (fig7_network smoke JSON, {dense,sparse} x {1,8} threads)"
# The parallel backend and the sparse active-set scheduler must both be
# bit-identical to the sequential dense sweep: the smoke JSON (which
# carries only deterministic metrics, no wall-clock gauges) has to match
# byte for byte across thread counts AND stepping modes.
DET_DIR="$(mktemp -d)"
trap 'rm -rf "$DET_DIR"' EXIT
baseline="$DET_DIR/dense-t1.json"
target/release/fig7_network --smoke --stepping dense --threads 1 --json "$baseline" >/dev/null
for stepping in dense sparse; do
    for threads in 1 8; do
        out="$DET_DIR/$stepping-t$threads.json"
        if [ "$out" != "$baseline" ]; then
            target/release/fig7_network --smoke --stepping "$stepping" --threads "$threads" \
                --json "$out" >/dev/null
        fi
        if ! cmp -s "$baseline" "$out"; then
            echo "FAIL: fig7_network smoke JSON differs: dense/1 vs $stepping/$threads" >&2
            diff "$baseline" "$out" >&2 || true
            exit 1
        fi
    done
done
echo "    byte-identical across stepping modes and thread counts"

echo "All checks passed."
